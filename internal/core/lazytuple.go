package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfa"
)

// LazyTuple is the lazy combined D-SFA: the tuple-interned construction
// of internal/multi/dsfaprod.go turned from a BFS over all reachable
// tuples into on-demand discovery during scanning. A state is a k-tuple
// of component D-SFA states (one on-the-fly Lazy per rule); the first
// time a scan steps a tuple on a byte class, the k component successors
// are looked up (building component states as needed) and the successor
// tuple is interned. Only tuples the traffic actually reaches are ever
// materialized — the product blow-up that makes eager construction
// reject large rule sets never happens, at the price of bounding memory
// at run time instead of compile time.
//
// Unlike the eager tuple construction, no product DFA exists, so there
// is no |Dprod|-long mapping vector and no mask table. The denotation
// of a tuple state is the concatenation of its components' mapping
// vectors — a block-diagonal transformation of length Σ|Di| — and that
// concatenation is the carried value of the streaming protocol:
// composition is blockwise, and the verdict bit of rule i is read from
// block i alone (Di.Accept[blocki[Di.Start]]). Crucially the carried
// value never references tuple ids, which is what makes eviction safe
// mid-stream: a spilled vector can be re-interned into a freshly reset
// structure and scanning continues exactly where it stopped.
//
// Concurrency: the transition fast path is the same lock-free
// atomic-published-row protocol as Lazy. Scans hold rw.RLock for the
// duration of a chunk; eviction (BudgetEvict) takes rw.Lock, so it
// waits for in-flight chunks and no reader ever observes a reset. A
// walker that hits the budget spills its carried vector, releases the
// read lock, asks the budget for room (which may evict this very
// structure), re-acquires, re-interns, and retries the same byte — so
// RunToVec always completes and never returns an error.
type LazyTuple struct {
	dfas  []*dfa.DFA
	comps []*Lazy
	k     int
	nc    int // combined byte-class count

	classOf   [256]uint16 // byte → combined class
	compClass []int32     // [k*nc]: component i's class for combined class c
	offs      []int32     // k+1 block offsets into carried vectors
	vlen      int         // Σ|Di|, the carried-vector length

	h    *BudgetHandle
	room int64 // MakeRoom request size: the largest single allocation

	rw sync.RWMutex // readers: scans; writer: eviction
	mu sync.Mutex   // construction

	ids       map[string]int32
	tuples    []int32   // stride k, read under mu only
	rows      [][]int32 // paged transition rows, stride nc per state
	states    int32
	maxStates int32
	bytes     int64 // tuple-layer charged bytes (under mu)
	start     int32
	next      []int32 // slow-path scratch (under mu)
	key       []byte  // intern-key scratch (under mu)

	fills  atomic.Int64
	resets atomic.Int64
	gen    atomic.Uint64
}

const (
	lazyTuplePageBits = 6
	lazyTuplePageSize = 1 << lazyTuplePageBits
	// lazyCompPageBits sizes component pages: with a shared byte budget
	// the charging unit must stay small relative to realistic budgets
	// (the grace floor force-admits one page per table, so page size is
	// also the granularity below which a budget cannot bind), and
	// component DFAs can run to thousands of states at 2·n bytes per
	// mapping vector.
	lazyCompPageBits = 5
)

// LazyTupleOptions parameterizes NewLazyTuple.
type LazyTupleOptions struct {
	// Budget is the table budget charged for every materialized state.
	// nil runs unbudgeted (a private unlimited budget, still metered).
	Budget *TableBudget
	// MaxStates caps resident tuple states (0 = 1<<20). Overruns reset
	// the structure, they never fail a scan.
	MaxStates int
	// CompMaxStates caps each component's resident states (0 = 1<<20).
	CompMaxStates int
}

// NewLazyTuple prepares the lazy combined automaton for the given
// component DFAs (one per rule; verdict bit i belongs to dfas[i]).
func NewLazyTuple(dfas []*dfa.DFA, opts LazyTupleOptions) (*LazyTuple, error) {
	if len(dfas) == 0 {
		return nil, errors.New("core: lazy tuple over zero components")
	}
	k := len(dfas)
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	if maxStates < lazyTuplePageSize {
		maxStates = lazyTuplePageSize
	}
	compMax := opts.CompMaxStates
	if compMax <= 0 {
		compMax = 1 << 20
	}
	if compMax < 1<<lazyCompPageBits {
		compMax = 1 << lazyCompPageBits
	}

	t := &LazyTuple{
		dfas:      dfas,
		k:         k,
		ids:       make(map[string]int32),
		maxStates: int32(maxStates),
		next:      make([]int32, k),
		key:       make([]byte, 4*k),
		offs:      make([]int32, k+1),
	}
	for i, d := range dfas {
		t.offs[i+1] = t.offs[i] + int32(d.NumStates)
	}
	t.vlen = int(t.offs[k])

	// Common byte-class refinement: two bytes share a combined class iff
	// no component distinguishes them.
	classKey := make([]byte, k)
	classIDs := make(map[string]uint16)
	var byClass []int32 // class-major while discovering, transposed below
	for b := 0; b < 256; b++ {
		for i, d := range dfas {
			classKey[i] = d.BC.Of[b]
		}
		id, ok := classIDs[string(classKey)]
		if !ok {
			id = uint16(len(classIDs))
			classIDs[string(classKey)] = id
			for _, d := range dfas {
				byClass = append(byClass, int32(d.BC.Of[b]))
			}
		}
		t.classOf[b] = id
	}
	t.nc = len(classIDs)
	// The hot path indexes component-major: compClass[i*nc+c].
	t.compClass = make([]int32, k*t.nc)
	for c := 0; c < t.nc; c++ {
		for i := 0; i < k; i++ {
			t.compClass[i*t.nc+c] = byClass[c*k+i]
		}
	}

	// Budget wiring. The grace floor covers the identity working set —
	// one page per component plus one tuple page, exactly what reinit
	// charges after an eviction — plus the slack a re-entry needs (the
	// spilled vectors intern into the fresh pages; only the tuple-state
	// bookkeeping charges). An evicted structure can therefore always
	// re-initialize and re-enter regardless of how full the shared
	// budget is; docs/memory-model.md states the resulting RSS bound.
	budget := opts.Budget
	if budget == nil {
		budget = NewTableBudget(0)
	}
	tuplePage := t.tuplePageBytes()
	var compPages int64
	t.room = tuplePage
	for _, d := range dfas {
		pb := int64(1<<lazyCompPageBits) * int64(4*d.BC.Count+2*d.NumStates+1+lazyStateOverhead)
		compPages += pb
		if pb > t.room {
			t.room = pb
		}
	}
	grace := compPages + tuplePage + 4*t.tupleStateBytes() + 1024
	t.h = budget.Register(t, grace)

	t.comps = make([]*Lazy, k)
	for i, d := range dfas {
		l, err := newLazySized(d, compMax, lazyCompPageBits, t.h)
		if err != nil {
			t.h.Close()
			return nil, fmt.Errorf("core: lazy tuple component %d: %w", i, err)
		}
		t.comps[i] = l
	}
	numPages := (maxStates + lazyTuplePageSize - 1) / lazyTuplePageSize
	t.rows = make([][]int32, numPages)
	t.mu.Lock()
	err := t.initStartLocked()
	t.mu.Unlock()
	if err != nil {
		t.h.Close()
		return nil, err
	}
	return t, nil
}

// tuplePageBytes is the budget charge of one page of transition rows.
func (t *LazyTuple) tuplePageBytes() int64 {
	return int64(lazyTuplePageSize) * int64(4*t.nc)
}

// tupleStateBytes is the per-state charge outside the rows: the tuple
// itself, the intern key, and approximate map overhead.
func (t *LazyTuple) tupleStateBytes() int64 {
	return int64(8*t.k + lazyStateOverhead)
}

// Rules returns the number of component rules k.
func (t *LazyTuple) Rules() int { return t.k }

// VecLen returns the carried-vector length Σ|Di|.
func (t *LazyTuple) VecLen() int { return t.vlen }

// Gen returns the eviction generation (test observability).
func (t *LazyTuple) Gen() uint64 { return t.gen.Load() }

// Close releases the structure's budget bytes and deregisters it from
// eviction. The structure must not be scanned afterwards.
func (t *LazyTuple) Close() { t.h.Close() }

// Identity writes the empty input's transformation — every block the
// identity over its component's states — into dst (VecLen() long).
func (t *LazyTuple) Identity(dst []int16) {
	for i := 0; i < t.k; i++ {
		base := int(t.offs[i])
		n := int(t.offs[i+1]) - base
		for q := 0; q < n; q++ {
			dst[base+q] = int16(q)
		}
	}
}

// Compose merges two carried vectors blockwise: h ← "f then g" per
// component (Lemma 1's ⊙ applied block-diagonally). h must not alias f
// or g.
//sfa:borrowed f g
func (t *LazyTuple) Compose(h, f, g []int16) {
	for i := 0; i < t.k; i++ {
		base := int(t.offs[i])
		n := int(t.offs[i+1]) - base
		hb, fb, gb := h[base:base+n], f[base:base+n], g[base:base+n]
		for q := 0; q < n; q++ {
			hb[q] = gb[fb[q]]
		}
	}
}

// OrAccept ORs the verdicts of a carried vector into dst: bit i is set
// when component i accepts the input the vector summarizes.
//sfa:borrowed cur
func (t *LazyTuple) OrAccept(cur []int16, dst []uint64) {
	for i := 0; i < t.k; i++ {
		d := t.dfas[i]
		q := cur[int(t.offs[i])+int(d.Start)]
		if d.Accept[q] {
			dst[i>>6] |= 1 << (i & 63)
		}
	}
}

// RunToVec scans chunk from the identity and writes the induced
// transformation into dst (VecLen() long). States are built on demand;
// budget exhaustion and state-cap overruns are absorbed internally by
// the spill–evict–re-enter protocol, so RunToVec always completes.
func (t *LazyTuple) RunToVec(chunk []byte, dst []int16) {
	t.h.Touch()
	t.rw.RLock()
	cur := t.start
	for i := 0; i < len(chunk); {
		c := int(t.classOf[chunk[i]])
		page := t.rows[cur>>lazyTuplePageBits]
		to := atomic.LoadInt32(&page[(int(cur)&(lazyTuplePageSize-1))*t.nc+c])
		if to < 0 {
			var err error
			to, err = t.slowStep(cur, c)
			if err != nil {
				// Spill the carried transformation — it is the scan's
				// whole state, independent of any ids — then give the
				// read lock up so eviction can run, make room, and
				// re-enter at the same byte.
				t.materialize(cur, dst)
				t.rw.RUnlock()
				if errors.Is(err, ErrTableBudget) {
					t.h.MakeRoom(t.room)
				} else {
					t.BudgetEvict() // own state cap: only a reset helps
				}
				t.rw.RLock()
				cur = t.reenterLoop(dst)
				continue
			}
		}
		cur = to
		i++
	}
	t.materialize(cur, dst)
	t.rw.RUnlock()
}

// slowStep constructs the missing transition of tuple `cur` on combined
// class c. The returned error is ErrTableBudget (make room and retry)
// or ErrTooManyStates (reset and retry); both are handled inside
// RunToVec.
func (t *LazyTuple) slowStep(cur int32, c int) (int32, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	page := t.rows[cur>>lazyTuplePageBits]
	slot := &page[(int(cur)&(lazyTuplePageSize-1))*t.nc+c]
	if to := atomic.LoadInt32(slot); to >= 0 {
		return to, nil // lost the race
	}
	start := time.Now()
	base := int(cur) * t.k
	for i, comp := range t.comps {
		id, err := comp.NextClass(t.tuples[base+i], int(t.compClass[i*t.nc+c]))
		if err != nil {
			return 0, err
		}
		t.next[i] = id
	}
	to, err := t.internTupleLocked(t.next)
	if err != nil {
		return 0, err
	}
	atomic.StoreInt32(slot, to) // publish: readers of `to` see its row page
	t.h.ObserveFill(time.Since(start).Nanoseconds())
	return to, nil
}

// internTupleLocked interns a k-tuple of component ids. Caller holds mu.
func (t *LazyTuple) internTupleLocked(tup []int32) (int32, error) {
	for i, q := range tup {
		binary.LittleEndian.PutUint32(t.key[i*4:], uint32(q))
	}
	if id, ok := t.ids[string(t.key)]; ok {
		return id, nil
	}
	id := t.states
	if id >= t.maxStates {
		return 0, fmt.Errorf("%w (lazy tuple cap %d)", ErrTooManyStates, t.maxStates)
	}
	p := id >> lazyTuplePageBits
	charge := t.tupleStateBytes()
	if t.rows[p] == nil {
		charge += t.tuplePageBytes()
	}
	if !t.h.TryCharge(charge) {
		return 0, fmt.Errorf("%w (tuple state)", ErrTableBudget)
	}
	t.bytes += charge
	if t.rows[p] == nil {
		rows := make([]int32, lazyTuplePageSize*t.nc)
		for i := range rows {
			rows[i] = -1
		}
		t.rows[p] = rows
	}
	t.ids[string(t.key)] = id
	t.tuples = append(t.tuples, tup...)
	t.states = id + 1
	t.fills.Add(1)
	t.h.NoteFill()
	return id, nil
}

// initStartLocked interns the identity tuple. Caller holds mu.
func (t *LazyTuple) initStartLocked() error {
	for i, comp := range t.comps {
		t.next[i] = comp.Start()
	}
	id, err := t.internTupleLocked(t.next)
	if err != nil {
		return err
	}
	t.start = id
	return nil
}

// materialize writes tuple state `cur`'s denotation — the concatenated
// component mapping vectors — into dst. Called under rw.RLock; takes mu
// because the tuples slice grows by append.
func (t *LazyTuple) materialize(cur int32, dst []int16) {
	t.mu.Lock()
	base := int(cur) * t.k
	for i, comp := range t.comps {
		copy(dst[t.offs[i]:t.offs[i+1]], comp.Map(t.tuples[base+i]))
	}
	t.mu.Unlock()
}

// reenterLoop re-interns a spilled carried vector as a (possibly fresh)
// tuple state. Called under rw.RLock after room was made. A charge can
// still fail if competing fills consumed the freed room first; each
// failed attempt self-evicts, and after a self-eviction the whole
// re-entry fits the handle's grace floor (one state per component in
// already-charged pages, one tuple state), so the loop terminates.
func (t *LazyTuple) reenterLoop(vec []int16) int32 {
	for {
		id, err := t.reenter(vec)
		if err == nil {
			return id
		}
		t.rw.RUnlock()
		t.BudgetEvict()
		t.rw.RLock()
	}
}

func (t *LazyTuple) reenter(vec []int16) (int32, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, comp := range t.comps {
		id, err := comp.Intern(vec[t.offs[i]:t.offs[i+1]])
		if err != nil {
			return 0, err
		}
		t.next[i] = id
	}
	return t.internTupleLocked(t.next)
}

// BudgetEvict implements Evictable: drop every materialized state —
// components and tuples — give the bytes back, and re-initialize to
// the identity. In-flight scans are excluded by the write lock; their
// spilled vectors re-enter afterwards. Returns the bytes released.
func (t *LazyTuple) BudgetEvict() int64 {
	t.rw.Lock()
	defer t.rw.Unlock()
	before := t.h.Used()
	t.mu.Lock()
	for _, c := range t.comps {
		c.drop()
	}
	for i := range t.rows {
		t.rows[i] = nil
	}
	t.tuples = t.tuples[:0]
	clear(t.ids)
	t.states = 0
	t.h.Release(t.bytes)
	t.bytes = 0
	t.mu.Unlock()
	// Re-initialization charges through the grace floor: with every
	// byte of this structure just released, it cannot fail.
	for _, c := range t.comps {
		if err := c.reinit(); err != nil {
			panic(fmt.Sprintf("core: lazy tuple reinit: %v", err))
		}
	}
	t.mu.Lock()
	if err := t.initStartLocked(); err != nil {
		t.mu.Unlock()
		panic(fmt.Sprintf("core: lazy tuple reinit: %v", err))
	}
	t.mu.Unlock()
	t.resets.Add(1)
	t.h.NoteEviction()
	t.gen.Add(1)
	return before - t.h.Used()
}

// LazyTupleStats is a point-in-time snapshot of the structure.
type LazyTupleStats struct {
	Rules         int
	States        int   // resident tuple states
	CompStates    int   // resident component states, summed
	ResidentBytes int64 // bytes charged to the table budget
	Fills         int64 // tuple states ever materialized
	Resets        int64 // whole-structure evictions
}

// Stats snapshots the structure's counters.
func (t *LazyTuple) Stats() LazyTupleStats {
	t.mu.Lock()
	states := int(t.states)
	t.mu.Unlock()
	comp := 0
	for _, c := range t.comps {
		comp += c.NumStates()
	}
	return LazyTupleStats{
		Rules:         t.k,
		States:        states,
		CompStates:    comp,
		ResidentBytes: t.h.Used(),
		Fills:         t.fills.Load(),
		Resets:        t.resets.Load(),
	}
}
