// Package multi compiles a set of patterns into combined simultaneous
// automata for multi-pattern matching — the deep-packet-inspection
// workload of the paper's introduction (one SNORT ruleset, heavy packet
// traffic), where scanning each input once per rule multiplies table
// walks and cache pressure by the rule count.
//
// The pipeline generalizes the paper's single-pattern one:
//
//  1. each rule is compiled to its minimal DFA as usual;
//  2. the rules of a shard are combined by the product construction into
//     one DFA whose states carry a per-rule accept bitmask (bit r set
//     when rule r accepts), then minimized mask-aware;
//  3. the combined DFA feeds the unchanged D-SFA correspondence
//     construction (core.BuildDSFA — the SFA states are transformations
//     of the combined DFA's state set), and matching is one pooled
//     parallel pass per shard through engine.MultiSFA, which reports the
//     full bitmask of matching rules.
//
// Construction cost is the known pain point of combined automata: the
// product DFA can approach the product of the component sizes, and its
// transformation monoid can grow further still. A state-count budget
// detects the blow-up during both constructions, and the planner falls
// back to K combined shards scanned concurrently, with rules assigned
// greedily by estimated automaton size. K = rule count degenerates to
// the isolated per-rule engines, so the fallback is total.
//
// # Key types
//
// [Set] is the compiled artifact: an immutable list of shards, each
// holding a shardEngine (the common surface of eager [engine.MultiSFA]
// and lazy [engine.LazyMultiSFA]), the shard's rule indices, and its
// optional prefilter. [Options] carries every build knob; [Compile]
// plans and builds, [Recompile] rebuilds incrementally, reusing (by
// pointer) every shard whose rule membership and budgets are unchanged
// — the hot-reload primitive internal/serve leans on.
//
// # Lazy shards
//
// With Options.Lazy, rules whose dry-run construction exceeds the eager
// state budget are not refused: they are binned into lazy shards whose
// product states materialize on demand during scanning
// (core.LazyTuple interns k-tuples of component D-SFA states), bounded
// by a process-wide byte budget (Options.Budget, default the global
// budget) with LRU eviction of cold automata. Rules that fit keep the
// eager plan — the sticky fallback — so lazy mode never slows a set the
// eager builder could compile. Lazy shards are not serializable
// ([ErrNotSerializable]); Set.Encode fails on them and callers persist
// rule text instead. See docs/memory-model.md for the budget hierarchy
// and eviction invariants.
//
// # Invariants
//
// Verdicts are byte-identical across every plan the package can choose
// — combined, sharded, lazy, prefiltered, isolated — which is what the
// oracle tests in this package and in sfa/ gate on. Prefilter classes
// (window/prefix/gate/uncovered) are segregated into separate shards so
// one pathological rule cannot demote its neighbours, for eager and
// lazy bins alike. Construction never mutates a live Set: reloads build
// a fresh Set and swap it in whole.
package multi
