package multi

import (
	"errors"
	"time"

	"repro/internal/prefilter"
)

// errDifferentSets rejects composing streams of different rule sets.
var errDifferentSets = errors.New("multi: cannot compose streams of different rule sets")

// SetStream is online matching over a combined rule set: the multi-
// pattern generalization of the single-pattern stream. Per shard it
// carries one |D|-sized mapping — the composition of every chunk's
// transformation under the associative ⊙ — so the state held between
// Writes is fixed-size regardless of how much input has been consumed,
// and Theorem 3 makes the verdict split-invariant: any chunking of the
// input yields exactly the one-shot Scan mask.
//
// Window-mode shards of a prefiltered set (see prefilter.go) use a
// different carried state: an accumulated accept mask plus the set of
// candidate windows still awaiting input, with a bounded tail buffer of
// recent bytes so windows (and literals) split across chunk boundaries
// are re-materialized exactly. A chunk with no literal hits and no
// pending window advances such a shard with *no* automaton work at all
// — the O(|D|) per-chunk mapping composition is skipped entirely, which
// is the streaming half of the prefilter's win. Verdicts stay
// byte-identical to the unfiltered stream for any chunking.
//
// A SetStream is not safe for concurrent use; Set.NewStream is cheap
// enough to give each goroutine (or each network request) its own. The
// per-Write hot path allocates nothing in steady state: the carried
// vectors, span lists, and tail buffers all live in the stream, and
// each shard's chunk scan reuses the engine's pooled match context.
type SetStream struct {
	set   *Set
	cur   [][]int16 // carried mapping per shard
	tmp   [][]int16 // ping-pong scratch per shard
	local []uint64  // shard-local mask scratch for Mask
	bytes int64

	// Window/prefix-shard streaming state; nil unless the set's
	// prefilter has window- or prefix-mode shards. Prefix shards carry
	// no state of their own: their verdict is recomputed at Mask time
	// from the head buffer (the first tailCap ≥ maxLen stream bytes),
	// so each Write advances them for free.
	acc     [][]uint64      // per shard: accumulated local mask (window shards only)
	pending [][]span        // per shard: windows outliving consumed input, chunk-relative
	newsp   [][]span        // per-Write span scratch
	hits    []prefilter.Hit // literal-hit scratch
	head    []byte          // first ≤tailCap bytes of the stream (Compose junctions)
	tail    []byte          // last ≤tailCap bytes of the stream
	wbuf    []byte          // window/junction materialization scratch
	tailCap int

	// stat is the stream's own measurement row (plain fields — a
	// SetStream is single-goroutine by contract). It is what a slow-scan
	// trace reads per request, next to the tenant-wide obs aggregates.
	stat StreamStats
}

// StreamStats is one stream's consumption account: Writes and bytes
// consumed, wall time spent advancing the carried mappings, and — with
// a prefilter armed — how many per-shard chunk visits the literal
// cascade skipped vs scanned (the same semantics as the set-wide
// PrefilterStats, scoped to this stream).
type StreamStats struct {
	Chunks int64 `json:"chunks"`
	Bytes  int64 `json:"bytes"`
	// ComposeNs is the total wall time spent advancing the stream
	// (everything a Write does); PrefilterNs is the subset spent in the
	// literal pass and candidate-window scans, so ComposeNs−PrefilterNs
	// is pure carried-mapping composition.
	ComposeNs          int64 `json:"compose_ns"`
	PrefilterNs        int64 `json:"prefilter_ns"`
	ShardChunksSkipped int64 `json:"shard_chunks_skipped"`
	ShardChunksScanned int64 `json:"shard_chunks_scanned"`
}

// Stats returns the stream's consumption counters so far.
func (st *SetStream) Stats() StreamStats { return st.stat }

// NewStream starts incremental matching from the empty input.
func (s *Set) NewStream() *SetStream {
	st := &SetStream{
		set: s,
		cur: make([][]int16, len(s.shards)),
		tmp: make([][]int16, len(s.shards)),
	}
	maxWords := 0
	for i, sh := range s.shards {
		n := sh.m.MappingLen()
		st.cur[i] = make([]int16, n)
		st.tmp[i] = make([]int16, n)
		sh.m.InitMapping(st.cur[i])
		if w := sh.m.Words(); w > maxWords {
			maxWords = w
		}
	}
	st.local = make([]uint64, maxWords)
	if p := s.pre; p != nil && (p.maxSpan > 0 || p.maxPre > 0) {
		// tailCap bytes of history suffice for any window: a pending
		// span reaches back at most one span length (2×maxLen) plus a
		// straddling literal, and a Compose junction needs maxLen on
		// each side of the seam. Prefix shards need the head buffer to
		// hold their whole decisive prefix.
		st.tailCap = p.maxSpan + p.litMax
		if p.maxPre > st.tailCap {
			st.tailCap = p.maxPre
		}
		st.acc = make([][]uint64, len(s.shards))
		st.pending = make([][]span, len(s.shards))
		st.newsp = make([][]span, len(s.shards))
		for i, sh := range s.shards {
			if p.shards[i].mode == preWindow {
				st.acc[i] = make([]uint64, maskWords(len(sh.rules)))
			}
		}
		st.head = make([]byte, 0, st.tailCap)
		st.tail = make([]byte, 0, st.tailCap)
		st.wbuf = make([]byte, 0, 2*st.tailCap)
	}
	return st
}

// Set returns the rule set this stream matches against.
func (st *SetStream) Set() *Set { return st.set }

// Write consumes the next chunk of input, advancing every shard's carried
// mapping (each shard's scan is chunk-parallel on the engine pool).
//sfa:noalloc
func (st *SetStream) Write(chunk []byte) {
	if len(chunk) == 0 {
		return
	}
	start := time.Now()
	if st.acc != nil {
		st.writeWindows(chunk)
		st.stat.PrefilterNs += time.Since(start).Nanoseconds()
	}
	for i, sh := range st.set.shards {
		if st.bypass(i) {
			continue
		}
		st.cur[i], st.tmp[i] = sh.m.ComposeChunk(st.cur[i], st.tmp[i], chunk)
		st.stat.ShardChunksScanned++
	}
	if st.acc != nil {
		st.carry(chunk)
	}
	elapsed := time.Since(start).Nanoseconds()
	st.bytes += int64(len(chunk))
	st.stat.Chunks++
	st.stat.Bytes += int64(len(chunk))
	st.stat.ComposeNs += elapsed
	// The set-wide aggregate records here, one chunk per Write, so the
	// numbers stay meaningful even when the prefilter lets every shard
	// skip the chunk (the engines' ComposeChunk never runs then).
	if g := st.set.stats; g != nil {
		g.RecordChunk(len(chunk), elapsed)
	}
}

// bypass reports whether shard i skips the carried-mapping protocol:
// window shards keep an accumulated mask plus pending spans instead,
// prefix shards recompute their verdict from the head buffer at Mask
// time. Either way, a chunk with no candidate work for the shard costs
// no automaton time at all.
func (st *SetStream) bypass(i int) bool {
	if st.acc == nil {
		return false
	}
	return st.acc[i] != nil || st.set.pre.shards[i].mode == prePrefix
}

// writeWindows advances the window-mode shards over chunk: one literal
// pass over the chunk (plus a boundary pass for literals bisected by
// the previous Write), then each shard scans only the merged candidate
// windows, carrying windows that outlive the chunk as pending spans.
// Span coordinates are chunk-relative: negative positions reach into
// the tail buffer, positions past len(chunk) await future input.
//sfa:noalloc
func (st *SetStream) writeWindows(chunk []byte) {
	p := st.set.pre
	for i := range st.set.shards {
		if p.shards[i].mode == prePrefix {
			p.totalBytes.Add(int64(len(chunk)))
			p.chunksSkipped.Add(1) // no per-chunk work: Mask reads the head
			st.stat.ShardChunksSkipped++
		}
	}
	if p.maxSpan == 0 {
		return // prefix-only: no window shards, no literal matcher needed
	}
	st.hits = p.m.AppendHits(st.hits[:0], chunk)
	if lm := p.litMax; lm > 1 && len(st.tail) > 0 {
		// Literals straddling the previous chunk boundary: scan the
		// (lm−1)-byte overlap region and keep only true straddlers —
		// hits wholly in the tail were found by the previous Write,
		// hits wholly in the chunk by the pass above.
		left, right := lm-1, lm-1
		if left > len(st.tail) {
			left = len(st.tail)
		}
		if right > len(chunk) {
			right = len(chunk)
		}
		reg := append(st.wbuf[:0], st.tail[len(st.tail)-left:]...)
		reg = append(reg, chunk[:right]...)
		n0 := len(st.hits)
		st.hits = p.m.AppendHits(st.hits, reg)
		kept := st.hits[:n0]
		for _, h := range st.hits[n0:] {
			pos := h.Pos - left
			if pos < 0 && pos+len(p.m.Lits()[h.Lit]) > 0 {
				kept = append(kept, prefilter.Hit{Lit: h.Lit, Pos: pos})
			}
		}
		st.hits = kept
	}
	for i := range st.newsp {
		st.newsp[i] = st.newsp[i][:0]
	}
	for _, h := range st.hits {
		for _, t := range p.targets[h.Lit] {
			if t.fwd < 0 || st.acc[t.shard] == nil {
				continue
			}
			st.newsp[t.shard] = append(st.newsp[t.shard],
				span{h.Pos - int(t.back), h.Pos + int(t.fwd)})
		}
	}
	for i, sh := range st.set.shards {
		if st.acc[i] == nil {
			continue
		}
		p.totalBytes.Add(int64(len(chunk)))
		st.newsp[i] = append(st.newsp[i], st.pending[i]...)
		st.pending[i] = st.pending[i][:0]
		if len(st.newsp[i]) == 0 {
			p.chunksSkipped.Add(1)
			st.stat.ShardChunksSkipped++
			continue
		}
		p.chunksScanned.Add(1)
		st.stat.ShardChunksScanned++
		spans := mergeSpans(st.newsp[i], -len(st.tail), len(chunk)+st.tailCap)
		for _, sp := range spans {
			scanHi := sp.hi
			if scanHi > len(chunk) {
				// The window awaits input: keep it pending (shifted to
				// the next chunk's origin) and scan the part already
				// available — occurrences completed inside it must show
				// in Mask now; the post-extension rescan re-ORs them
				// harmlessly (window verdicts are monotone).
				st.pending[i] = append(st.pending[i],
					span{sp.lo - len(chunk), sp.hi - len(chunk)})
				scanHi = len(chunk)
			}
			if scanHi <= sp.lo {
				continue
			}
			st.scanWindow(sh, i, chunk, sp.lo, scanHi)
		}
	}
}

// scanWindow ORs shard i's verdicts over the chunk-relative window
// [lo, hi), hi ≤ len(chunk). A negative lo reaches into the tail
// buffer; since a single occurrence near the boundary spans at most
// [−maxLen, +maxLen], the crossing part is materialized bounded and the
// in-chunk remainder is scanned as a direct slice.
//sfa:noalloc
func (st *SetStream) scanWindow(sh *shard, i int, chunk []byte, lo, hi int) {
	p := st.set.pre
	if lo >= 0 {
		p.candBytes.Add(int64(hi - lo))
		sh.m.OrMask(chunk[lo:hi], st.acc[i])
		return
	}
	aEnd := hi
	if ml := p.shards[i].maxLen; aEnd > ml {
		aEnd = ml
	}
	if aEnd > 0 {
		st.wbuf = append(st.wbuf[:0], st.tail[len(st.tail)+lo:]...)
		st.wbuf = append(st.wbuf, chunk[:aEnd]...)
	} else {
		st.wbuf = append(st.wbuf[:0], st.tail[len(st.tail)+lo:len(st.tail)+aEnd]...)
	}
	p.candBytes.Add(int64(len(st.wbuf)))
	sh.m.OrMask(st.wbuf, st.acc[i])
	if hi > aEnd && hi > 0 {
		start := 0
		if aEnd > 0 {
			// Overlap the pieces by maxLen so no occurrence is split.
			start = aEnd - p.shards[i].maxLen
			if start < 0 {
				start = 0
			}
		}
		p.candBytes.Add(int64(hi - start))
		sh.m.OrMask(chunk[start:hi], st.acc[i])
	}
}

// carry updates the head and tail buffers after a Write.
//sfa:noalloc
func (st *SetStream) carry(chunk []byte) {
	if len(st.head) < st.tailCap {
		n := st.tailCap - len(st.head)
		if n > len(chunk) {
			n = len(chunk)
		}
		st.head = append(st.head, chunk[:n]...)
	}
	switch {
	case len(chunk) >= st.tailCap:
		st.tail = append(st.tail[:0], chunk[len(chunk)-st.tailCap:]...)
	case len(st.tail)+len(chunk) > st.tailCap:
		keep := st.tailCap - len(chunk)
		copy(st.tail, st.tail[len(st.tail)-keep:])
		st.tail = append(st.tail[:keep], chunk...)
	default:
		st.tail = append(st.tail, chunk...)
	}
}

// Mask writes the global accept bitmask of the input consumed so far —
// bit r set iff rule r matches — into dst, which must have Words()
// capacity, and returns dst[:Words()]. It may be called at any point; the
// stream continues afterwards. Allocation-free with a caller buffer.
func (st *SetStream) Mask(dst []uint64) []uint64 {
	dst = dst[:st.set.words]
	for i := range dst {
		dst[i] = 0
	}
	for i, sh := range st.set.shards {
		if st.acc != nil && st.acc[i] != nil {
			sh.merge(dst, st.acc[i])
			continue
		}
		if st.acc != nil && st.set.pre.shards[i].mode == prePrefix {
			// Begin-anchored shard: the verdict is decided by the first
			// maxLen stream bytes, all held in the head buffer.
			k := st.set.pre.shards[i].maxLen
			if k > len(st.head) {
				k = len(st.head)
			}
			sh.merge(dst, sh.m.MatchMask(st.head[:k], st.local))
			continue
		}
		sh.merge(dst, sh.m.MatchMaskFrom(st.cur[i], st.local))
	}
	st.set.recordHeat(dst)
	return dst
}

// Bytes returns the number of bytes consumed.
func (st *SetStream) Bytes() int64 { return st.bytes }

// Reset rewinds the stream to the empty input.
func (st *SetStream) Reset() {
	for i, sh := range st.set.shards {
		sh.m.InitMapping(st.cur[i])
		if st.acc != nil && st.acc[i] != nil {
			for w := range st.acc[i] {
				st.acc[i][w] = 0
			}
			st.pending[i] = st.pending[i][:0]
		}
	}
	if st.acc != nil {
		st.head = st.head[:0]
		st.tail = st.tail[:0]
	}
	st.bytes = 0
	st.stat = StreamStats{}
}

// Compose merges another stream's consumed input *after* this one's, as
// if the two byte sequences had been concatenated: st ← st · t. Both
// streams must come from the same Set. This is what makes out-of-order
// segment processing work: scan segments independently (other machines,
// other goroutines), then fold the carried mappings with ⊙. t is read,
// never modified.
func (st *SetStream) Compose(t *SetStream) error {
	if t.set != st.set {
		return errDifferentSets
	}
	if st.acc != nil {
		st.composeWindows(t)
	}
	for i, sh := range st.set.shards {
		if st.bypass(i) {
			continue
		}
		sh.m.ComposeMask(st.tmp[i], st.cur[i], t.cur[i])
		st.cur[i], st.tmp[i] = st.tmp[i], st.cur[i]
	}
	if st.acc != nil {
		st.composeCarry(t)
	}
	st.bytes += t.bytes
	st.stat.Chunks += t.stat.Chunks
	st.stat.Bytes += t.stat.Bytes
	st.stat.ComposeNs += t.stat.ComposeNs
	st.stat.PrefilterNs += t.stat.PrefilterNs
	st.stat.ShardChunksSkipped += t.stat.ShardChunksSkipped
	st.stat.ShardChunksScanned += t.stat.ShardChunksScanned
	return nil
}

// composeWindows folds t's window-shard state into st's. The two
// streams found every occurrence inside their own segment; what remains
// are occurrences crossing the seam. Each such occurrence is at most
// maxLen long, so it lies entirely inside the junction buffer
// st.tail ++ t.head (each side holds min(segment, tailCap) ≥
// min(segment, maxLen) bytes) — one OrMask over the junction closes the
// verdicts. Windows still awaiting input after the new end come from
// st's pending (shifted), t's pending (already end-relative), and
// literals straddling the seam itself.
func (st *SetStream) composeWindows(t *SetStream) {
	p := st.set.pre
	if p.maxSpan == 0 {
		return // prefix-only: composeCarry's head merge is all that matters
	}
	jbuf := append(st.wbuf[:0], st.tail...)
	jbuf = append(jbuf, t.head...)
	boundary := len(st.tail)
	// Literal hits straddling the seam, jbuf-relative.
	st.hits = st.hits[:0]
	if lm := p.litMax; lm > 1 && boundary > 0 && len(t.head) > 0 {
		lo := boundary - (lm - 1)
		if lo < 0 {
			lo = 0
		}
		hi := boundary + lm - 1
		if hi > len(jbuf) {
			hi = len(jbuf)
		}
		n0 := 0
		st.hits = p.m.AppendHits(st.hits[:0], jbuf[lo:hi])
		kept := st.hits[:n0]
		for _, h := range st.hits[n0:] {
			pos := h.Pos + lo
			if pos < boundary && pos+len(p.m.Lits()[h.Lit]) > boundary {
				kept = append(kept, prefilter.Hit{Lit: h.Lit, Pos: pos})
			}
		}
		st.hits = kept
	}
	for i, sh := range st.set.shards {
		if st.acc[i] == nil {
			continue
		}
		for w := range st.acc[i] {
			st.acc[i][w] |= t.acc[i][w]
		}
		if len(jbuf) > 0 {
			p.candBytes.Add(int64(len(jbuf)))
			sh.m.OrMask(jbuf, st.acc[i])
		}
		// Rebuild pending relative to the new end of stream.
		merged := st.newsp[i][:0]
		for _, sp := range st.pending[i] {
			if hi := int64(sp.hi) - t.bytes; hi > 0 {
				merged = append(merged, span{sp.lo - int(t.bytes), int(hi)})
			}
		}
		merged = append(merged, t.pending[i]...)
		for _, h := range st.hits {
			for _, tgt := range p.targets[h.Lit] {
				if int(tgt.shard) != i || tgt.fwd < 0 {
					continue
				}
				posRel := int64(h.Pos-boundary) - t.bytes
				if hi := posRel + int64(tgt.fwd); hi > 0 {
					merged = append(merged,
						span{int(posRel) - int(tgt.back), int(hi)})
				}
			}
		}
		st.newsp[i] = merged
		merged = mergeSpans(merged, -st.tailCap, st.tailCap)
		st.pending[i] = append(st.pending[i][:0], merged...)
	}
}

// composeCarry merges the head/tail history buffers: head stays the
// first tailCap bytes of the concatenation, tail the last.
func (st *SetStream) composeCarry(t *SetStream) {
	if len(st.head) < st.tailCap {
		n := st.tailCap - len(st.head)
		if n > len(t.head) {
			n = len(t.head)
		}
		st.head = append(st.head, t.head[:n]...)
	}
	if int(t.bytes) >= st.tailCap || len(t.tail) >= st.tailCap {
		st.tail = append(st.tail[:0], t.tail...)
		return
	}
	// t is short: t.tail is all of t; keep what fits of st.tail first.
	if keep := st.tailCap - len(t.tail); len(st.tail) > keep {
		copy(st.tail, st.tail[len(st.tail)-keep:])
		st.tail = st.tail[:keep]
	}
	st.tail = append(st.tail, t.tail...)
}
