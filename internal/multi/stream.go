package multi

import "errors"

// errDifferentSets rejects composing streams of different rule sets.
var errDifferentSets = errors.New("multi: cannot compose streams of different rule sets")

// SetStream is online matching over a combined rule set: the multi-
// pattern generalization of the single-pattern stream. Per shard it
// carries one |D|-sized mapping — the composition of every chunk's
// transformation under the associative ⊙ — so the state held between
// Writes is fixed-size regardless of how much input has been consumed,
// and Theorem 3 makes the verdict split-invariant: any chunking of the
// input yields exactly the one-shot Scan mask.
//
// A SetStream is not safe for concurrent use; Set.NewStream is cheap
// enough to give each goroutine (or each network request) its own. The
// per-Write hot path allocates nothing: the carried vectors live in the
// stream, and each shard's chunk scan reuses the engine's pooled match
// context.
type SetStream struct {
	set   *Set
	cur   [][]int16 // carried mapping per shard
	tmp   [][]int16 // ping-pong scratch per shard
	local []uint64  // shard-local mask scratch for Mask
	bytes int64
}

// NewStream starts incremental matching from the empty input.
func (s *Set) NewStream() *SetStream {
	st := &SetStream{
		set: s,
		cur: make([][]int16, len(s.shards)),
		tmp: make([][]int16, len(s.shards)),
	}
	maxWords := 0
	for i, sh := range s.shards {
		n := sh.m.MappingLen()
		st.cur[i] = make([]int16, n)
		st.tmp[i] = make([]int16, n)
		sh.m.InitMapping(st.cur[i])
		if w := sh.m.Words(); w > maxWords {
			maxWords = w
		}
	}
	st.local = make([]uint64, maxWords)
	return st
}

// Set returns the rule set this stream matches against.
func (st *SetStream) Set() *Set { return st.set }

// Write consumes the next chunk of input, advancing every shard's carried
// mapping (each shard's scan is chunk-parallel on the engine pool).
func (st *SetStream) Write(chunk []byte) {
	for i, sh := range st.set.shards {
		st.cur[i], st.tmp[i] = sh.m.ComposeChunk(st.cur[i], st.tmp[i], chunk)
	}
	st.bytes += int64(len(chunk))
}

// Mask writes the global accept bitmask of the input consumed so far —
// bit r set iff rule r matches — into dst, which must have Words()
// capacity, and returns dst[:Words()]. It may be called at any point; the
// stream continues afterwards. Allocation-free with a caller buffer.
func (st *SetStream) Mask(dst []uint64) []uint64 {
	dst = dst[:st.set.words]
	for i := range dst {
		dst[i] = 0
	}
	for i, sh := range st.set.shards {
		sh.merge(dst, sh.m.MatchMaskFrom(st.cur[i], st.local))
	}
	return dst
}

// Bytes returns the number of bytes consumed.
func (st *SetStream) Bytes() int64 { return st.bytes }

// Reset rewinds the stream to the empty input.
func (st *SetStream) Reset() {
	for i, sh := range st.set.shards {
		sh.m.InitMapping(st.cur[i])
	}
	st.bytes = 0
}

// Compose merges another stream's consumed input *after* this one's, as
// if the two byte sequences had been concatenated: st ← st · t. Both
// streams must come from the same Set. This is what makes out-of-order
// segment processing work: scan segments independently (other machines,
// other goroutines), then fold the carried mappings with ⊙.
func (st *SetStream) Compose(t *SetStream) error {
	if t.set != st.set {
		return errDifferentSets
	}
	for i, sh := range st.set.shards {
		sh.m.ComposeMask(st.tmp[i], st.cur[i], t.cur[i])
		st.cur[i], st.tmp[i] = st.tmp[i], st.cur[i]
	}
	st.bytes += t.bytes
	return nil
}
