package multi

import (
	"encoding/binary"

	"repro/internal/dfa"
)

// minimizeMasked is Moore partition refinement generalized to bitmask
// acceptance: states are equivalent iff they carry the same accept mask
// AND reach mask-equivalent states on every byte class. dfa.Minimize
// cannot be reused here — its {F, Q∖F} initial partition would merge
// states whose rule sets differ — so the initial partition is by mask
// row and each round refines by transition signatures.
//
// The product DFA is reachable-only by construction, so no trim pass is
// needed. States of the result are renumbered in BFS order from the
// start, matching dfa.Minimize's canonical-order convention; the
// returned mask table is remapped in lockstep.
func minimizeMasked(d *dfa.DFA, masks []uint64, words int) (*dfa.DFA, []uint64) {
	n, nc := d.NumStates, d.BC.Count

	// Initial partition: states grouped by accept-mask row.
	block := make([]int32, n)
	blocks := 0
	{
		seen := make(map[string]int32)
		key := make([]byte, words*8)
		for q := 0; q < n; q++ {
			row := masks[q*words : (q+1)*words]
			for i, w := range row {
				binary.LittleEndian.PutUint64(key[i*8:], w)
			}
			id, ok := seen[string(key)]
			if !ok {
				id = int32(len(seen))
				seen[string(key)] = id
			}
			block[q] = id
		}
		blocks = len(seen)
	}

	// Refine until the block count stabilizes. Each round's signature is
	// the current block plus the successor blocks under every class, so
	// rounds only ever split blocks; at most n-1 rounds terminate.
	next := make([]int32, n)
	key := make([]byte, (nc+1)*4)
	for {
		seen := make(map[string]int32, blocks)
		for q := 0; q < n; q++ {
			binary.LittleEndian.PutUint32(key, uint32(block[q]))
			base := q * nc
			for c := 0; c < nc; c++ {
				binary.LittleEndian.PutUint32(key[(c+1)*4:], uint32(block[d.NextC[base+c]]))
			}
			id, ok := seen[string(key)]
			if !ok {
				id = int32(len(seen))
				seen[string(key)] = id
			}
			next[q] = id
		}
		if len(seen) == blocks {
			break
		}
		blocks = len(seen)
		block, next = next, block
	}

	if blocks == n {
		return d, masks // already minimal
	}

	// Renumber blocks in BFS order from the start state's block.
	order := make([]int32, blocks) // new id → old block id
	newID := make([]int32, blocks) // old block id → new id
	for i := range newID {
		newID[i] = -1
	}
	rep := make([]int32, blocks) // old block id → a member state
	for q := n - 1; q >= 0; q-- {
		rep[block[q]] = int32(q)
	}
	count := 0
	push := func(b int32) int32 {
		if newID[b] < 0 {
			newID[b] = int32(count)
			order[count] = b
			count++
		}
		return newID[b]
	}
	push(block[d.Start])
	for i := 0; i < count; i++ {
		base := int(rep[order[i]]) * nc
		for c := 0; c < nc; c++ {
			push(block[d.NextC[base+c]])
		}
	}

	m := dfa.New(count, d.BC)
	m.Start = newID[block[d.Start]]
	mmasks := make([]uint64, count*words)
	for i := 0; i < count; i++ {
		q := int(rep[order[i]])
		for c := 0; c < nc; c++ {
			m.NextC[i*nc+c] = newID[block[d.NextC[q*nc+c]]]
		}
		m.Accept[i] = d.Accept[q]
		copy(mmasks[i*words:(i+1)*words], masks[q*words:(q+1)*words])
	}
	m.DetectDead()
	return m, mmasks
}
