package multi

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/prefilter"
)

// shard is one combined automaton covering a subset of the rules.
// Local mask bit i of the shard's matcher corresponds to global rule
// index rules[i]. The engine is eager (table-backed engine.MultiSFA)
// or lazy (engine.LazyMultiSFA, budgeted); see shardEngine.
type shard struct {
	m     shardEngine
	rules []int
}

// Set matches a whole rule set with one pooled pass per shard. It is
// safe for concurrent use: per-Scan scratch is recycled through a
// sync.Pool of contexts.
type Set struct {
	shards []*shard
	rules  int
	words  int // global mask words, maskWords(rules)
	// planShards is the shard count the last *full* plan produced —
	// Recompile's consolidation baseline: incremental reloads may only
	// grow the count so far past it before a full replan is forced.
	planShards int
	// pre is the armed literal prefilter, nil when compiled without one
	// (see prefilter.go). It is set before the set is published and
	// never mutated afterwards, so scans read it without synchronization.
	pre  *setPre
	ctxs sync.Pool
	// report is the structured account of the build that produced this
	// set (see BuildReport). Written once before publication.
	report BuildReport
	// stats, when non-nil (Options.Stats), aggregates streaming scan
	// measurements across every stream of this set: one RecordChunk per
	// SetStream.Write, regardless of how many shards the prefilter let
	// skip the chunk. Written once before publication.
	stats *obs.ScanStats
	// heat counts, per global rule index, how many verdicts reported the
	// rule as matched — accumulated allocation-free on the verdict path
	// (Scan and SetStream.Mask) by popping the result mask's bits. Like
	// the rest of the set's state it lives for one generation; reloads
	// start a fresh table.
	heat []atomic.Int64
	// pool carries Scan's shard-level fan-out (Options.Pool, default
	// engine.DefaultPool). Shard-internal chunk parallelism uses the
	// same pool via each shard engine's own wiring.
	pool *engine.Pool
}

func newSet(shards []*shard, rules int, pool *engine.Pool) *Set {
	if pool == nil {
		pool = engine.DefaultPool()
	}
	s := &Set{shards: shards, rules: rules, words: maskWords(rules), heat: make([]atomic.Int64, rules), pool: pool}
	s.ctxs.New = func() any {
		c := &scanCtx{
			bufs:  make([][]uint64, len(shards)),
			spans: make([][]span, len(shards)),
			gate:  make([]bool, len(shards)),
		}
		for i, sh := range shards {
			c.bufs[i] = make([]uint64, maskWords(len(sh.rules)))
		}
		return c
	}
	return s
}

// scanCtx carries one Scan's per-shard result buffers and the
// prefilter's per-scan scratch (literal hits, candidate spans, gate
// flags), all recycled through the set's pool.
type scanCtx struct {
	bufs  [][]uint64
	spans [][]span
	gate  []bool
	hits  []prefilter.Hit
	next  atomic.Int64
}

// NumRules returns the number of rules the set was compiled from.
func (s *Set) NumRules() int { return s.rules }

// NumShards returns the number of combined shards.
func (s *Set) NumShards() int { return len(s.shards) }

// Words returns the result bitmask width in uint64 words.
func (s *Set) Words() int { return s.words }

// Scan matches every rule against data in one pass per shard and writes
// the global bitmask — bit r set iff rule r matches — into dst, which
// must have Words() capacity; dst[:Words()] is returned. Shards run
// concurrently, up to `workers` at a time (0 = all), dispatched on the
// engine worker pool (never fresh goroutines); each shard's pass is
// itself chunk-parallel on the same pool, which is safe because Pool.Run
// waiters help drain the queue. workers = 1 scans the shards
// sequentially on the calling goroutine — the zero-allocation form,
// since the concurrent fan-out costs one task closure per call.
func (s *Set) Scan(data []byte, workers int, dst []uint64) []uint64 {
	dst = dst[:s.words]
	for i := range dst {
		dst[i] = 0
	}
	c := s.ctxs.Get().(*scanCtx)
	if s.pre.active() {
		s.pre.prepare(c, data)
	}
	if len(s.shards) == 1 || workers == 1 {
		for i, sh := range s.shards {
			sh.merge(dst, s.scanShard(i, data, c))
		}
		s.ctxs.Put(c)
		s.recordHeat(dst)
		return dst
	}
	c.next.Store(0)
	if workers <= 0 || workers > len(s.shards) {
		workers = len(s.shards)
	}
	s.pool.Map(workers, func(int) {
		for {
			i := int(c.next.Add(1)) - 1
			if i >= len(s.shards) {
				return
			}
			s.scanShard(i, data, c)
		}
	})
	for i, sh := range s.shards {
		sh.merge(dst, c.bufs[i])
	}
	s.ctxs.Put(c)
	s.recordHeat(dst)
	return dst
}

// recordHeat pops the set bits of a just-computed global verdict mask
// into the per-rule heat table: one atomic add per matched rule, no
// allocation, nothing at all on the (typical) all-zero mask.
func (s *Set) recordHeat(mask []uint64) {
	for w, v := range mask {
		for v != 0 {
			r := w<<6 + bits.TrailingZeros64(v)
			if r < len(s.heat) {
				s.heat[r].Add(1)
			}
			v &= v - 1
		}
	}
}

// RuleHeat returns a copy of the per-rule match counts, indexed by
// global rule index: how many verdict computations (one-shot Scans and
// stream Mask reads) reported each rule matched since the set was
// built. The table resets with the set — a hot reload starts fresh.
func (s *Set) RuleHeat() []int64 {
	out := make([]int64, len(s.heat))
	for i := range s.heat {
		out[i] = s.heat[i].Load()
	}
	return out
}

// merge translates a shard-local result mask into global rule bits.
func (sh *shard) merge(dst, local []uint64) {
	for i, r := range sh.rules {
		if local[i>>6]&(1<<(i&63)) != 0 {
			dst[r>>6] |= 1 << (r & 63)
		}
	}
}

// Any reports whether any rule matches, scanning shards sequentially
// with an early exit (each shard's pass is still chunk-parallel).
func (s *Set) Any(data []byte) bool {
	for _, sh := range s.shards {
		if sh.m.Match(data) {
			return true
		}
	}
	return false
}

// ShardInfo describes one shard for stats reporting.
type ShardInfo struct {
	Rules      []int // global rule indices
	DFAStates  int   // combined minimal DFA (live states); lazy: Σ|Di|
	SFAStates  int   // combined D-SFA (live states); lazy: resident states
	Layout     string
	TableBytes int64
	BuildID    uint64 // engine construction id; stable across shard reuse
	// Prefilter is the shard's scan mode under the literal cascade:
	// "window", "prefix", "gate", "full", or "off" when the set has no
	// prefilter.
	Prefilter string
	// Lazy marks a shard whose product states are built on demand under
	// the table budget; the remaining fields are its cache counters.
	Lazy          bool
	ResidentBytes int64 // bytes currently charged to the table budget
	Fills         int64 // states materialized since build
	Evictions     int64 // whole-structure resets under budget pressure
	// HotStates is the shard's chunk-boundary state frequency table
	// (descending), populated only when the set scans with an attached
	// ScanStats; HotOther counts boundary crossings the fixed-size table
	// could not attribute.
	HotStates []obs.StateCount
	HotOther  int64
	// Always-on cost attribution: time and traffic this shard's engine
	// consumed. Engines are reused across hot reloads, so the account
	// spans the engine's lifetime, not just the current generation.
	ComposeNs   int64 // ns composing chunks / one-shot scans
	ScanChunks  int64 // chunks + one-shot scans that reached the automaton
	ScanBytes   int64 // bytes the engine actually walked
	CandWindows int64 // prefilter candidate windows verified
}

// Shards reports per-shard statistics.
func (s *Set) Shards() []ShardInfo {
	out := make([]ShardInfo, len(s.shards))
	for i, sh := range s.shards {
		rules := make([]int, len(sh.rules))
		copy(rules, sh.rules)
		inf := sh.m.Info()
		out[i] = ShardInfo{
			Rules:         rules,
			DFAStates:     inf.DFAStates,
			SFAStates:     inf.SFAStates,
			Layout:        inf.Layout,
			TableBytes:    inf.TableBytes,
			BuildID:       sh.m.BuildID(),
			Prefilter:     s.shardPrefilterMode(i),
			Lazy:          inf.Lazy,
			ResidentBytes: inf.ResidentBytes,
			Fills:         inf.Fills,
			Evictions:     inf.Evictions,
			HotStates:     inf.HotStates,
			HotOther:      inf.HotOther,
			ComposeNs:     inf.ComposeNs,
			ScanChunks:    inf.ScanChunks,
			ScanBytes:     inf.ScanBytes,
			CandWindows:   inf.CandWindows,
		}
	}
	return out
}

// shardPrefilterMode names shard i's prefilter scan mode.
func (s *Set) shardPrefilterMode(i int) string {
	if s.pre == nil {
		return "off"
	}
	switch s.pre.shards[i].mode {
	case preWindow:
		return "window"
	case prePrefix:
		return "prefix"
	case preGate:
		return "gate"
	}
	return "full"
}

// TableBytes returns the total resident size of all shards' match
// tables.
func (s *Set) TableBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.m.TableBytes()
	}
	return n
}
