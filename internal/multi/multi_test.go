package multi

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dfa"
	"repro/internal/syntax"
)

// parseAll parses whole-input patterns.
func parseAll(t testing.TB, patterns []string) []*syntax.Node {
	t.Helper()
	nodes := make([]*syntax.Node, len(patterns))
	for i, p := range patterns {
		nodes[i] = syntax.MustParse(p, 0)
	}
	return nodes
}

// oracleDFAs compiles each pattern independently (the isolated engines'
// pipeline) as the semantics reference.
func oracleDFAs(t testing.TB, patterns []string) []*dfa.DFA {
	t.Helper()
	ds := make([]*dfa.DFA, len(patterns))
	for i, p := range patterns {
		ds[i] = dfa.MustCompilePattern(p)
	}
	return ds
}

var testPatterns = []string{
	`(ab)*`,
	`a[ab]*b`,
	`([0-4]{2}[5-9]{2})*`,
	`(a|bc)*d?`,
	`[a-c]{1,3}`,
	`abba`,
	`(0|1)*1(0|1)`,
	`x*y*z*`,
}

// testInputs is a deterministic mix of matching-ish and random inputs
// over the patterns' alphabets.
func testInputs() [][]byte {
	inputs := [][]byte{
		nil, []byte("a"), []byte("ab"), []byte("abab"), []byte("abba"),
		[]byte("aabb"), []byte("0156"), []byte("01560459"), []byte("bcd"),
		[]byte("abc"), []byte("ccc"), []byte("xyzz"), []byte("101"),
		[]byte("d"), []byte("z"),
	}
	r := rand.New(rand.NewSource(7))
	alpha := []byte("ab01459bcxyzd")
	for i := 0; i < 60; i++ {
		n := r.Intn(24)
		in := make([]byte, n)
		for j := range in {
			in[j] = alpha[r.Intn(len(alpha))]
		}
		inputs = append(inputs, in)
	}
	return inputs
}

// checkAgainstOracle verifies that the set reports exactly the rules
// whose own DFAs accept, for every input.
func checkAgainstOracle(t *testing.T, s *Set, ds []*dfa.DFA, inputs [][]byte) {
	t.Helper()
	dst := make([]uint64, s.Words())
	for _, in := range inputs {
		mask := s.Scan(in, 0, dst)
		for r, d := range ds {
			want := d.Accepts(in)
			got := mask[r>>6]&(1<<(r&63)) != 0
			if got != want {
				t.Fatalf("input %q rule %d (%s): combined=%v isolated=%v (shards=%d)",
					in, r, testPatterns[r], got, want, s.NumShards())
			}
		}
		if any := s.Any(in); any != (countBits(mask) > 0) {
			t.Fatalf("input %q: Any=%v but mask has %d bits", in, any, countBits(mask))
		}
	}
}

func countBits(mask []uint64) int {
	n := 0
	for _, w := range mask {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func TestCombinedAgreesWithIsolatedOracle(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	ds := oracleDFAs(t, testPatterns)
	inputs := testInputs()
	for _, force := range []int{0, 1, 2, 4, len(testPatterns)} {
		for _, threads := range []int{1, 3} {
			s, err := Compile(nodes, Options{ForceShards: force, Threads: threads})
			if err != nil {
				t.Fatalf("force=%d: %v", force, err)
			}
			if force > 1 && s.NumShards() < 2 {
				t.Fatalf("force=%d built %d shards", force, s.NumShards())
			}
			checkAgainstOracle(t, s, ds, inputs)
		}
	}
}

func TestProductMasksMatchComponents(t *testing.T) {
	ds := oracleDFAs(t, testPatterns)
	d, masks, err := productDFA(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	words := maskWords(len(ds))
	for _, in := range testInputs() {
		q := d.Run(d.Start, in)
		row := masks[int(q)*words : (int(q)+1)*words]
		for i, comp := range ds {
			want := comp.Accepts(in)
			got := row[i>>6]&(1<<(i&63)) != 0
			if got != want {
				t.Fatalf("input %q component %d: product=%v component=%v", in, i, got, want)
			}
		}
		if d.Accepts(in) != (countBits(row) > 0) {
			t.Fatalf("input %q: bool accept disagrees with mask", in)
		}
	}
}

func TestMinimizeMaskedPreservesSemantics(t *testing.T) {
	ds := oracleDFAs(t, testPatterns)
	d, masks, err := productDFA(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	words := maskWords(len(ds))
	m, mmasks := minimizeMasked(d, masks, words)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumStates > d.NumStates {
		t.Fatalf("minimization grew the DFA: %d → %d", d.NumStates, m.NumStates)
	}
	for _, in := range testInputs() {
		q0 := d.Run(d.Start, in)
		q1 := m.Run(m.Start, in)
		r0 := masks[int(q0)*words : (int(q0)+1)*words]
		r1 := mmasks[int(q1)*words : (int(q1)+1)*words]
		for w := range r0 {
			if r0[w] != r1[w] {
				t.Fatalf("input %q: mask changed by minimization: %x → %x", in, r0, r1)
			}
		}
	}
	// Idempotence: a second pass must find nothing to merge.
	m2, _ := minimizeMasked(m, mmasks, words)
	if m2.NumStates != m.NumStates {
		t.Fatalf("second minimization changed size: %d → %d", m.NumStates, m2.NumStates)
	}
}

// TestBudgetFallbackShards forces blow-up with a tiny budget and checks
// the planner still produces a correct (just more sharded) set.
func TestBudgetFallbackShards(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	ds := oracleDFAs(t, testPatterns)
	s, err := Compile(nodes, Options{SFABudget: 12, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() < 2 {
		t.Fatalf("budget 12 produced %d shards; expected a split", s.NumShards())
	}
	checkAgainstOracle(t, s, ds, testInputs())
}

// TestManyRulesCrossWordBoundary exercises masks wider than one word.
func TestManyRulesCrossWordBoundary(t *testing.T) {
	var patterns []string
	for i := 0; i < 70; i++ {
		patterns = append(patterns, fmt.Sprintf("a{%d}", i+1))
	}
	nodes := parseAll(t, patterns)
	s, err := Compile(nodes, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Words() != 2 {
		t.Fatalf("Words = %d, want 2", s.Words())
	}
	dst := make([]uint64, s.Words())
	for n := 0; n <= 70; n++ {
		in := make([]byte, n)
		for i := range in {
			in[i] = 'a'
		}
		mask := s.Scan(in, 0, dst)
		for r := 0; r < 70; r++ {
			want := r+1 == n
			got := mask[r>>6]&(1<<(r&63)) != 0
			if got != want {
				t.Fatalf("len %d rule a{%d}: got %v", n, r+1, got)
			}
		}
	}
}

func TestEmptySetRejected(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Fatal("expected error for empty rule set")
	}
}

func TestShardStats(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	s, err := Compile(nodes, Options{ForceShards: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	infos := s.Shards()
	if len(infos) != s.NumShards() {
		t.Fatalf("Shards() len %d != NumShards %d", len(infos), s.NumShards())
	}
	seen := make(map[int]bool)
	for _, info := range infos {
		if info.SFAStates <= 0 || info.DFAStates <= 0 {
			t.Fatalf("empty stats: %+v", info)
		}
		for _, r := range info.Rules {
			if seen[r] {
				t.Fatalf("rule %d in two shards", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != len(testPatterns) {
		t.Fatalf("%d rules covered, want %d", len(seen), len(testPatterns))
	}
}
