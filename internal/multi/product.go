package multi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/nfa"
)

// maxProductStates caps any product DFA at the D-SFA construction's own
// limit: core.BuildDSFA stores mapping entries as int16.
const maxProductStates = core.MaxDFAStates

// maskWords returns the bitmask width for n rules.
func maskWords(n int) int { return (n + 63) / 64 }

// combinedClasses computes the common refinement of the component DFAs'
// byte classes: two bytes are combined-equivalent iff every component
// treats them alike, so the product automaton behaves identically on
// them.
func combinedClasses(ds []*dfa.DFA) *nfa.ByteClasses {
	bc := &nfa.ByteClasses{}
	seen := make(map[string]uint8)
	key := make([]byte, len(ds))
	for b := 0; b < 256; b++ {
		for i, d := range ds {
			key[i] = d.BC.Of[b]
		}
		id, ok := seen[string(key)]
		if !ok {
			id = uint8(len(seen)) // a partition of 256 bytes has ≤ 256 blocks
			seen[string(key)] = id
			bc.Rep = append(bc.Rep, byte(b))
		}
		bc.Of[b] = id
	}
	bc.Count = len(seen)
	return bc
}

// productDFA combines the component DFAs into one complete DFA over their
// common byte-class refinement. States are reachable tuples of component
// states; the returned mask table holds one bitmask row per product state
// with bit i set iff component i accepts (stride maskWords(len(ds))).
//
// The construction is the subset construction of Algorithm 1 restricted
// to the deterministic union: every reachable subset holds exactly one
// state per component, so exploring tuples directly avoids the bitset
// machinery. budget > 0 bounds the product's state count; blow-up —
// which can approach the product of the component sizes — is reported as
// an error wrapping ErrBudget so the planner can split the shard.
func productDFA(ds []*dfa.DFA, budget int) (*dfa.DFA, []uint64, error) {
	if budget <= 0 || budget > maxProductStates {
		budget = maxProductStates
	}
	bc := combinedClasses(ds)
	n := len(ds)
	nc := bc.Count
	words := maskWords(n)

	ids := make(map[string]int32)
	var tuples []int32 // flat, stride n (owned copies)
	var trans []int32  // id*nc + c → id, grown in lockstep
	key := make([]byte, n*4)
	intern := func(t []int32) (int32, bool, error) {
		for i, q := range t {
			binary.LittleEndian.PutUint32(key[i*4:], uint32(q))
		}
		if id, ok := ids[string(key)]; ok {
			return id, false, nil
		}
		id := int32(len(ids))
		if int(id) >= budget {
			return 0, false, fmt.Errorf("%w: product DFA over %d states", ErrBudget, budget)
		}
		ids[string(key)] = id
		tuples = append(tuples, t...)
		trans = append(trans, make([]int32, nc)...)
		return id, true, nil
	}

	start := make([]int32, n)
	for i, d := range ds {
		start[i] = d.Start
	}
	startID, _, err := intern(start)
	if err != nil {
		return nil, nil, err
	}
	queue := []int32{startID}
	next := make([]int32, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for c := 0; c < nc; c++ {
			// One representative byte per combined class steps every
			// component; within a class no component distinguishes bytes.
			b := bc.Rep[c]
			src := tuples[int(id)*n : (int(id)+1)*n]
			for i, d := range ds {
				next[i] = d.NextByte(src[i], b)
			}
			to, fresh, err := intern(next)
			if err != nil {
				return nil, nil, err
			}
			trans[int(id)*nc+c] = to
			if fresh {
				queue = append(queue, to)
			}
		}
	}

	d := dfa.New(len(ids), bc)
	d.Start = startID
	d.NextC = trans
	masks := make([]uint64, len(ids)*words)
	for id := 0; id < len(ids); id++ {
		t := tuples[id*n : (id+1)*n]
		row := masks[id*words : (id+1)*words]
		any := false
		for i, q := range t {
			if ds[i].Accept[q] {
				row[i>>6] |= 1 << (i & 63)
				any = true
			}
		}
		// The bool accept bit is "any rule matches": it makes the product
		// a valid dfa.DFA (dead-sink detection, D-SFA accept vector)
		// while the mask table carries the per-rule verdicts.
		d.Accept[id] = any
	}
	d.DetectDead()
	return d, masks, nil
}
