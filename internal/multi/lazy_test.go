package multi

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// lazyTestPatterns mixes rules whose D-SFA dry run fits a small budget
// with bounded-gap rules whose transformation monoid overruns it — the
// population the lazy planner must split.
var lazyTestPatterns = []string{
	`(ab)*`,
	`[abc]*a[abc]{0,14}b[abc]*`,
	`a[ab]*b`,
	`[abc]*b[abc]{0,12}c[abc]*`,
	`[abc]*c[abc]{0,13}a[abc]*`,
	`abba`,
}

// lazyTestOptions forces the gap rules onto the lazy path: the tiny
// SFABudget makes their estimation dry runs fail (fits == false).
func lazyTestOptions(budget *core.TableBudget) Options {
	return Options{Lazy: true, SFABudget: 64, Budget: budget, Threads: 2}
}

func lazyTestInputs() [][]byte {
	inputs := [][]byte{
		nil, []byte("ab"), []byte("abba"), []byte("aab"),
		[]byte("acccb"), []byte("bccccc"), []byte("caaaa"),
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		in := make([]byte, r.Intn(200))
		for j := range in {
			in[j] = "abc"[r.Intn(3)]
		}
		inputs = append(inputs, in)
	}
	return inputs
}

func TestLazyPlannerSplitsAndMatches(t *testing.T) {
	nodes := parseAll(t, lazyTestPatterns)
	ds := oracleDFAs(t, lazyTestPatterns)
	s, err := Compile(nodes, lazyTestOptions(core.NewTableBudget(0)))
	if err != nil {
		t.Fatal(err)
	}
	var lazy, eager int
	for _, inf := range s.Shards() {
		if inf.Lazy {
			lazy++
			for _, r := range inf.Rules {
				if lazyTestPatterns[r][0] != '[' {
					t.Fatalf("rule %d (%s) unexpectedly lazy", r, lazyTestPatterns[r])
				}
			}
		} else {
			eager++
		}
	}
	if lazy == 0 || eager == 0 {
		t.Fatalf("expected a mixed plan, got %d lazy / %d eager shards", lazy, eager)
	}
	dst := make([]uint64, s.Words())
	for _, in := range lazyTestInputs() {
		mask := s.Scan(in, 0, dst)
		for r, d := range ds {
			want := d.Accepts(in)
			if got := mask[r>>6]&(1<<(r&63)) != 0; got != want {
				t.Fatalf("input %q rule %d (%s): lazy set=%v isolated=%v",
					in, r, lazyTestPatterns[r], got, want)
			}
		}
	}
}

// TestLazyStickyFallback: with an affordable budget, enabling Lazy must
// not change the plan — every rule fits, so every shard stays eager.
func TestLazyStickyFallback(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	s, err := Compile(nodes, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, inf := range s.Shards() {
		if inf.Lazy {
			t.Fatalf("affordable rules %v routed to a lazy shard", inf.Rules)
		}
	}
}

// TestLazySetStreamUnderEviction drives the streaming path while a
// starved budget forces mid-stream resets, checking verdicts against
// whole-input scans.
func TestLazySetStreamUnderEviction(t *testing.T) {
	nodes := parseAll(t, lazyTestPatterns)
	ds := oracleDFAs(t, lazyTestPatterns)
	s, err := Compile(nodes, lazyTestOptions(core.NewTableBudget(2<<10)))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	dst := make([]uint64, s.Words())
	for trial := 0; trial < 20; trial++ {
		in := make([]byte, 64+r.Intn(300))
		for j := range in {
			in[j] = "abc"[r.Intn(3)]
		}
		st := s.NewStream()
		for lo := 0; lo < len(in); {
			hi := lo + 1 + r.Intn(48)
			if hi > len(in) {
				hi = len(in)
			}
			st.Write(in[lo:hi])
			lo = hi
		}
		mask := st.Mask(dst)
		for ri, d := range ds {
			want := d.Accepts(in)
			if got := mask[ri>>6]&(1<<(ri&63)) != 0; got != want {
				t.Fatalf("trial %d rule %d (%s) input %q: stream=%v isolated=%v",
					trial, ri, lazyTestPatterns[ri], in, got, want)
			}
		}
	}
}

func TestLazySetNotSerializable(t *testing.T) {
	nodes := parseAll(t, lazyTestPatterns)
	keys := make([]string, len(nodes))
	for i, p := range lazyTestPatterns {
		keys[i] = p
	}
	s, err := Compile(nodes, lazyTestOptions(core.NewTableBudget(0)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf, keys); !errors.Is(err, ErrNotSerializable) {
		t.Fatalf("Encode of a lazy set: err=%v, want ErrNotSerializable", err)
	}
}
