package multi

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/syntax"
)

// codecPatterns are small enough to build fast and varied enough to
// shard when forced.
var codecPatterns = []string{
	`(ab)*c?`,
	`[a-c]{1,4}`,
	`x[0-9]+y`,
	`(foo|bar)+`,
}

func codecKeys(patterns []string) []string {
	keys := make([]string, len(patterns))
	for i, p := range patterns {
		keys[i] = "00\x00" + p
	}
	return keys
}

func parseAllCodec(t *testing.T, patterns []string) []*syntax.Node {
	t.Helper()
	nodes := make([]*syntax.Node, len(patterns))
	for i, p := range patterns {
		n, err := syntax.Parse(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	return nodes
}

// TestSetEncodeDecodeRoundTrip: the decoded set must agree Scan-for-Scan
// with the original across shard shapes.
func TestSetEncodeDecodeRoundTrip(t *testing.T) {
	keys := codecKeys(codecPatterns)
	nodes := parseAllCodec(t, codecPatterns)
	inputs := [][]byte{nil, []byte("abc"), []byte("x12y"), []byte("foobar"), []byte("abababc"), []byte("zzzz")}
	for _, force := range []int{0, 2, 4} {
		s, err := Compile(nodes, Options{Threads: 2, ForceShards: force})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf, keys); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSet(bytes.NewReader(buf.Bytes()), keys, Options{Threads: 2})
		if err != nil {
			t.Fatalf("force=%d: %v", force, err)
		}
		if got.NumShards() != s.NumShards() || got.NumRules() != s.NumRules() {
			t.Fatalf("force=%d: decoded %d shards/%d rules, want %d/%d",
				force, got.NumShards(), got.NumRules(), s.NumShards(), s.NumRules())
		}
		wdst := make([]uint64, s.Words())
		gdst := make([]uint64, got.Words())
		for _, in := range inputs {
			w := s.Scan(in, 1, wdst)
			g := got.Scan(in, 1, gdst)
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("force=%d input %q: %x != %x", force, in, w, g)
				}
			}
		}
	}
}

// TestDecodeSetRejectsWrongRules: a snapshot loaded against a different
// rule list must error, not silently mis-map verdict bits.
func TestDecodeSetRejectsWrongRules(t *testing.T) {
	keys := codecKeys(codecPatterns)
	nodes := parseAllCodec(t, codecPatterns)
	s, err := Compile(nodes, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf, keys); err != nil {
		t.Fatal(err)
	}

	// Different pattern key in position 0.
	wrong := append([]string(nil), keys...)
	wrong[0] = "00\x00something-else"
	if _, err := DecodeSet(bytes.NewReader(buf.Bytes()), wrong, Options{}); err == nil {
		t.Fatal("decode against wrong keys succeeded")
	}
	// Wrong count.
	if _, err := DecodeSet(bytes.NewReader(buf.Bytes()), keys[:3], Options{}); err == nil {
		t.Fatal("decode against fewer rules succeeded")
	}
}

// TestDecodeShardCRC: any single-byte corruption of a shard blob must be
// rejected by the CRC (or by validation before it).
func TestDecodeShardCRC(t *testing.T) {
	keys := codecKeys(codecPatterns[:2])
	nodes := parseAllCodec(t, codecPatterns[:2])
	s, err := Compile(nodes, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	local := make([]string, len(s.shards[0].rules))
	for i, r := range s.shards[0].rules {
		local[i] = keys[r]
	}
	if err := encodeShard(&buf, eagerEngine(s.shards[0].m), local); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	if _, err := DecodeShard(bytes.NewReader(blob), Options{}); err != nil {
		t.Fatalf("clean blob rejected: %v", err)
	}
	for pos := 0; pos < len(blob); pos += 97 {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x20
		if _, err := DecodeShard(bytes.NewReader(mut), Options{}); err == nil {
			t.Fatalf("corruption at byte %d accepted", pos)
		}
	}
	for _, cut := range []int{0, 4, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeShard(bytes.NewReader(blob[:cut]), Options{}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestShardKeyOrderInsensitive: membership is a multiset.
func TestShardKeyOrderInsensitive(t *testing.T) {
	a := ShardKey([]string{"k1", "k2", "k2"})
	b := ShardKey([]string{"k2", "k1", "k2"})
	if a != b {
		t.Fatal("shard key depends on order")
	}
	if a == ShardKey([]string{"k1", "k2"}) {
		t.Fatal("multiplicity ignored")
	}
	if a == ShardKey([]string{"k1", "k2", "k3"}) {
		t.Fatal("distinct membership collides")
	}
	// Length-prefixing must prevent concatenation ambiguity.
	if ShardKey([]string{"ab", "c"}) == ShardKey([]string{"a", "bc"}) {
		t.Fatal("concatenation ambiguity")
	}
}

// memCache is an in-memory ShardCache for instrumented tests. Like any
// ShardCache implementation it must be safe for concurrent use — the
// build path probes it from pool workers.
type memCache struct {
	mu    sync.Mutex
	blobs map[string][]byte
	loads int
	hits  int
}

func newMemCache() *memCache { return &memCache{blobs: map[string][]byte{}} }

func (c *memCache) Load(key string) (io.ReadCloser, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loads++
	b, ok := c.blobs[key]
	if !ok {
		return nil, false
	}
	c.hits++
	return io.NopCloser(bytes.NewReader(b)), true
}

func (c *memCache) Store(key string, write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blobs[key] = buf.Bytes()
	return nil
}

// TestCompileWithCache: a second compile of the same rules must be
// served from the cache and still agree verdict-for-verdict; a corrupt
// cache entry silently falls back to building.
func TestCompileWithCache(t *testing.T) {
	keys := codecKeys(codecPatterns)
	nodes := parseAllCodec(t, codecPatterns)
	cache := newMemCache()
	o := Options{Threads: 2, Keys: keys, Cache: cache}

	first, err := Compile(nodes, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cache.blobs) == 0 {
		t.Fatal("compile stored nothing")
	}
	second, err := Compile(nodes, o)
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits == 0 {
		t.Fatal("second compile hit nothing")
	}
	for i, info := range second.Shards() {
		if info.BuildID&(1<<63) == 0 {
			t.Fatalf("shard %d of cached compile has sequential id %d", i, info.BuildID)
		}
	}
	in := []byte("x123y foobar abc")
	w := first.Scan(in, 1, make([]uint64, first.Words()))
	g := second.Scan(in, 1, make([]uint64, second.Words()))
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("cached compile verdicts differ: %x != %x", w, g)
		}
	}

	// Corrupt every entry: the build must quietly fall back.
	for k, b := range cache.blobs {
		if len(b) > 10 {
			b[len(b)/2] ^= 0xff
		}
		cache.blobs[k] = b
	}
	third, err := Compile(nodes, o)
	if err != nil {
		t.Fatal(err)
	}
	g = third.Scan(in, 1, make([]uint64, third.Words()))
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("fallback verdicts differ: %x != %x", w, g)
		}
	}
}

// TestCompileKeysMismatch: Keys of the wrong length is an error.
func TestCompileKeysMismatch(t *testing.T) {
	nodes := parseAllCodec(t, codecPatterns)
	if _, err := Compile(nodes, Options{Keys: []string{"only-one"}}); err == nil {
		t.Fatal("mismatched Keys accepted")
	}
}
