package multi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/dfa"
)

// Tuple-interned combined D-SFA construction.
//
// The vector-interning correspondence construction (core.BuildDSFA) is
// the cold-build bottleneck of combined sets: every candidate SFA state
// is a full |D|-long transformation vector of the product DFA, so each
// of the NumStates × classes transition steps computes AND hashes |D|
// int16 entries. But the product DFA's states are tuples of component-
// DFA states and its transitions act componentwise, so the transformation
// a word induces on the product is fully determined by the k-tuple of
// component D-SFA states that word reaches — Theorem 2's correspondence,
// taken per component. Interning those short tuples replaces the O(|D|)
// per-transition work with k table lookups and an O(k) hash, and the
// |D|-long mapping vector the engine's reduction needs is materialized
// once per *interned* state (from its parent's vector, one class step
// per entry — plain array indexing, never hashed). This is the
// construction direction Jung & Burgstaller's multicore D-SFA work
// attacks with Rabin fingerprints (PAPERS.md); component tuples are an
// exact identity here, not a probabilistic one.
//
// Tuple identity is an over-approximation of vector identity: two
// distinct tuples can induce the same transformation on every
// *reachable* product state (the unreachable disagreements were cut by
// reachability and mask-aware minimization). The tuple automaton
// therefore has at least as many states as the vector-interned one and
// accepts byte-identical verdicts — the oracle tests gate on MatchMask
// equality, never on state counts, and the sfabench ruleset table
// reports the Σ|Sd| delta. Budgets are enforced on the tuple count,
// which makes them conservative in exactly the safe direction.

// tupleDSFA builds the combined D-SFA for a shard directly over
// reachable tuples of component D-SFA states. comps[i] is rule i's own
// D-SFA (over the component's minimal DFA); d is the shard's mask-aware-
// minimized product DFA of those same component DFAs, whose byte classes
// are the components' common refinement. cap > 0 bounds the number of
// interned tuple states; overruns report core.ErrTooManyStates exactly
// like the vector-interning path, so the planner's split-and-retry loop
// is path-agnostic.
func tupleDSFA(comps []*core.DSFA, d *dfa.DFA, cap int) (*core.DSFA, error) {
	k := len(comps)
	n := d.NumStates
	nc := d.BC.Count

	// Per-component class translation: combined class c steps component i
	// by its own class of the combined representative byte (within a
	// combined class no component distinguishes bytes).
	classOf := make([]int, k*nc)
	for c := 0; c < nc; c++ {
		b := d.BC.Rep[c]
		for i, s := range comps {
			classOf[i*nc+c] = int(s.BC().Of[b])
		}
	}

	sizeHint := 512
	if cap > 0 && cap < sizeHint {
		sizeHint = cap
	}
	ids := make(map[string]int32, sizeHint)
	tuples := make([]int32, 0, sizeHint*k) // flat, stride k
	maps := make([]int16, 0, sizeHint*n)   // flat vectors, stride n, in id order
	nextC := make([]int32, 0, sizeHint*nc) // grown in lockstep with interning
	key := make([]byte, 4*k)
	states := 0
	intern := func(t []int32) (int32, bool, error) {
		for i, q := range t {
			binary.LittleEndian.PutUint32(key[i*4:], uint32(q))
		}
		if id, ok := ids[string(key)]; ok {
			return id, false, nil
		}
		if cap > 0 && states >= cap {
			return 0, false, fmt.Errorf("%w (tuple cap %d)", core.ErrTooManyStates, cap)
		}
		id := int32(states)
		states++
		ids[string(key)] = id
		tuples = append(tuples, t...)
		nextC = append(nextC, make([]int32, nc)...)
		return id, true, nil
	}

	// The identity: every component at its own identity mapping, and the
	// identity vector over the product DFA.
	start := make([]int32, k)
	for i, s := range comps {
		start[i] = s.Start
	}
	startID, _, err := intern(start)
	if err != nil {
		return nil, err
	}
	identity := make([]int16, n)
	for q := range identity {
		identity[q] = int16(q)
	}
	maps = append(maps, identity...)

	queue := []int32{startID}
	next := make([]int32, k)
	vec := make([]int16, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for c := 0; c < nc; c++ {
			// O(k) transition: one component D-SFA table lookup each.
			for i, s := range comps {
				next[i] = s.NextClass(tuples[int(id)*k+i], classOf[i*nc+c])
			}
			to, fresh, err := intern(next)
			if err != nil {
				return nil, err
			}
			nextC[int(id)*nc+c] = to
			if fresh {
				// Materialize the fresh state's product-DFA mapping vector
				// from its parent's: f_{wσ}(q) = δ(f_w(q), σ). Computed into
				// scratch first — the append below may move the backing
				// array while parent still views the old one.
				parent := maps[int(id)*n : (int(id)+1)*n]
				for q := 0; q < n; q++ {
					vec[q] = int16(d.NextClass(int32(parent[q]), c))
				}
				maps = append(maps, vec...)
				queue = append(queue, to)
			}
		}
	}
	return core.NewDSFAFromParts(d, startID, nextC, maps)
}

// shardDSFA dispatches a shard's combined D-SFA construction: tuple
// interning by default, the vector-interning core.BuildDSFA for
// single-rule shards (there is no product to exploit) and under the
// Options.VectorIntern A/B knob. comps() is pulled lazily so the vector
// path never constructs component D-SFAs it does not need.
func shardDSFA(bin []planRule, d *dfa.DFA, cap int, o Options) (*core.DSFA, error) {
	if o.VectorIntern || len(bin) == 1 {
		return core.BuildDSFA(d, cap)
	}
	comps := make([]*core.DSFA, len(bin))
	for i, r := range bin {
		s, err := r.s.get()
		if err != nil {
			if isBudgetErr(err) {
				return nil, fmt.Errorf("%w: component D-SFA of rule %d over budget", ErrBudget, r.idx)
			}
			return nil, fmt.Errorf("multi: rule %d: %w", r.idx, err)
		}
		comps[i] = s
	}
	return tupleDSFA(comps, d, cap)
}
