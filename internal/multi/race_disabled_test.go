//go:build !race

package multi

const raceEnabled = false
