package multi

import "sync"

// BuildReport is the structured account of one Compile/Recompile run:
// what the planner did (bins, splits, merges), where the shards came
// from (cache hits vs in-process constructions vs reload carry-over),
// and where the time went. It answers "why did this reload take 40 s"
// without a profiler attached.
type BuildReport struct {
	Rules  int `json:"rules"`
	Shards int `json:"shards"`
	// LazyShards counts shards served by on-demand construction (a
	// subset of Shards).
	LazyShards int `json:"lazy_shards,omitempty"`
	// PlanBins is the bin count the first-fit-decreasing packing
	// produced before splits and merges.
	PlanBins int `json:"plan_bins"`
	// Splits counts bin halvings forced by budget overruns during the
	// build; Merges/MergeFails count the consolidation pass's outcomes.
	Splits     int `json:"splits,omitempty"`
	Merges     int `json:"merges,omitempty"`
	MergeFails int `json:"merge_fails,omitempty"`
	// CacheHits counts shards adopted whole from the content-addressed
	// cache; Built counts full in-process constructions (split and
	// merge attempts included); ReusedShards counts Recompile
	// carry-overs. EstCacheHits counts per-rule size estimates served
	// from the cache (the warm-plan fast path).
	CacheHits    int `json:"cache_hits,omitempty"`
	Built        int `json:"built"`
	ReusedShards int `json:"reused_shards,omitempty"`
	EstCacheHits int `json:"est_cache_hits,omitempty"`
	// Phase timings. PrepNs covers per-rule DFA construction and size
	// estimation; BuildNs the plan→build→merge pipeline; TotalNs the
	// whole Compile/Recompile call. ShardBuildNs lists the wall time of
	// each in-process shard construction (unordered — builds run
	// concurrently on the construction pool).
	PrepNs       int64   `json:"prep_ns"`
	BuildNs      int64   `json:"build_ns"`
	TotalNs      int64   `json:"total_ns"`
	ShardBuildNs []int64 `json:"shard_build_ns,omitempty"`
}

// buildRecorder collects a BuildReport across the build pipeline's
// concurrent fan-out. It rides along as an unexported pointer field on
// Options — every by-value Options copy shares it — and is nil on paths
// that do not want a report (the planner's internal re-plans). A plain
// mutex is fine here: this is construction time, not the scan path.
type buildRecorder struct {
	mu sync.Mutex
	r  BuildReport
}

// note applies f under the lock; nil recorders no-op so call sites
// never need a guard.
func (b *buildRecorder) note(f func(*BuildReport)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	f(&b.r)
	b.mu.Unlock()
}

// snapshot returns the collected report (with its own copy of the
// per-shard timing slice).
func (b *buildRecorder) snapshot() BuildReport {
	if b == nil {
		return BuildReport{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.r
	r.ShardBuildNs = append([]int64(nil), b.r.ShardBuildNs...)
	return r
}

// BuildReport returns the structured account of the Compile/Recompile
// call that produced this set.
func (s *Set) BuildReport() BuildReport { return s.report }
