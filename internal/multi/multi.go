package multi

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/prefilter"
	"repro/internal/syntax"
)

// ErrBudget is wrapped by construction errors when a state budget is
// exceeded; the planner reacts to it by splitting the shard.
var ErrBudget = errors.New("multi: state budget exceeded")

// Options parameterizes Compile.
type Options struct {
	// DFABudget bounds the product DFA of one shard (0 = default). It is
	// clamped to core.MaxDFAStates, the D-SFA construction's own limit.
	DFABudget int
	// SFABudget bounds the combined D-SFA of one shard (0 = default).
	// Shards whose D-SFA would exceed it are split.
	SFABudget int
	// SFAHardCap is the caller's fail-fast ceiling (sfa.WithSFACap): it
	// also binds the uncapped single-rule fallback, so a pathological
	// rule errors out instead of building an unbounded automaton.
	// 0 = no ceiling. When set below SFABudget it lowers the budget.
	SFAHardCap int
	// ForceShards plans exactly K shards up front instead of starting
	// from one combined automaton (blow-up splitting still applies, so
	// more shards may result). 0 = automatic.
	ForceShards int
	// PerRuleDFACap bounds each rule's own DFA, failing Compile when
	// exceeded — the same contract as the isolated engines' WithDFACap
	// (0 = unbounded). Without it a single pathological rule (a counted
	// window containing its own trigger) can make subset construction
	// exponential before any shard is planned.
	PerRuleDFACap int
	// Threads is the chunk parallelism of each shard's pass
	// (0 = GOMAXPROCS).
	Threads int
	// Layout selects the transition-table layout (default LayoutAuto).
	Layout engine.TableLayout
	// Pool overrides the engine's process-wide worker pool.
	Pool *engine.Pool
	// Spawn restores spawn-per-match goroutine creation (Fig. 10
	// semantics) instead of the persistent pool.
	Spawn bool
	// VectorIntern restores the vector-interning combined D-SFA
	// construction (core.BuildDSFA over the minimized product DFA: every
	// candidate state hashes a full |D|-long mapping vector) instead of
	// the default tuple-interned builder, which closes the shard's D-SFA
	// over k-tuples of component D-SFA states and materializes each
	// mapping vector once per interned state. The two paths produce
	// byte-identical MatchMask verdicts; tuple interning is an upper
	// bound on vector interning's state count (distinct tuples can agree
	// on every reachable product state), trading a usually-small state
	// surplus for construction that no longer hashes |D|-long vectors.
	// Single-rule shards always use the vector path — there is no
	// product to exploit. Kept for A/B measurement (sfabench ruleset,
	// BenchmarkRuleSet_ColdBuild_*).
	VectorIntern bool
	// Keys are opaque per-rule identity strings — Keys[i] identifies
	// nodes[i] by pattern source plus every semantics-affecting flag,
	// the same contract Recompile's reuse matches on. They enable the
	// content-addressed shard cache; nil leaves caching off.
	Keys []string
	// Cache is the content-addressed shard store consulted before each
	// shard build and filled after it (internal/snapshot.Store on disk).
	// Requires Keys. Shard entries are keyed by rule membership AND the
	// build budgets (DFABudget, SFABudget) AND the interning mode, so a
	// cache directory shared between differently-configured processes
	// can never serve a shard built under a larger budget into a
	// process with a smaller one, nor a tuple-built shard into a
	// VectorIntern A/B run. Layout is deliberately not part of the key:
	// decoding re-materializes match tables under the loading process's
	// options. nil disables caching.
	Cache ShardCache
	// Lazy enables the lazy shard mode: rules whose estimated combined
	// D-SFA exceeds the shard budget — the ones the eager planner would
	// build uncapped or reject with ErrTooManyStates — are instead
	// served by on-demand product-state construction under the table
	// budget (see lazy.go). Rules that fit keep the eager path, so the
	// fallback is sticky: enabling Lazy never changes how an affordable
	// set is built.
	Lazy bool
	// Budget is the byte budget lazy shards charge their materialized
	// states against (shared across shards; serve hands each tenant a
	// child of the process budget). nil with Lazy set uses the
	// process-global budget, core.GlobalTableBudget.
	Budget *core.TableBudget
	// Prefilter arms the literal prefilter cascade: Prefilter[i] is the
	// required-literal extraction for nodes[i] (computed by
	// prefilter.Extract on the rule as parsed, before search
	// bracketing). When set, the planner also segregates windowable
	// rules from the rest so one literal-free rule cannot force full
	// scans of an otherwise windowed shard, and Scan/SetStream run each
	// shard only near literal hits. nil (or a length mismatch) leaves
	// scanning unfiltered. The prefilter never changes verdicts — only
	// which input regions the automata walk.
	Prefilter []prefilter.Rule
	// Stats, when non-nil, makes every shard engine record per-chunk
	// streaming measurements (compose latency, chunk bytes, boundary
	// states) into the given aggregate. One *obs.ScanStats typically
	// serves a whole tenant; recording is lock-free and allocation-free
	// (see internal/obs).
	Stats *obs.ScanStats

	// rep collects the structured BuildReport across the pipeline's
	// concurrent fan-out. Unexported: Compile/Recompile install it, and
	// every by-value Options copy shares the pointer. nil (the
	// planner's internal re-plans) disables collection.
	rep *buildRecorder
}

// defaultDFABudget bounds the per-shard product DFA. core.BuildDSFA
// stores mapping entries as int16, so this may never exceed
// core.MaxDFAStates; 20 000 also keeps one shard's class-indexed table
// within a few MiB.
const defaultDFABudget = 20_000

// defaultSFABudget bounds the per-shard D-SFA: 1<<15 states resolve to
// the u16 table layout at 512 B per state — a 16 MiB ceiling per shard.
const defaultSFABudget = 1 << 15

func (o Options) withDefaults() Options {
	if o.DFABudget <= 0 || o.DFABudget > maxProductStates {
		o.DFABudget = defaultDFABudget
	}
	if o.SFABudget <= 0 {
		o.SFABudget = defaultSFABudget
	}
	if o.SFAHardCap > 0 && o.SFAHardCap < o.SFABudget {
		o.SFABudget = o.SFAHardCap
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	return o
}

// budget resolves the table budget lazy shards charge against.
func (o Options) budget() *core.TableBudget {
	if o.Budget != nil {
		return o.Budget
	}
	return core.GlobalTableBudget()
}

// engineOpts translates the engine-facing knobs.
func (o Options) engineOpts() []engine.Option {
	var opts []engine.Option
	if o.Layout != engine.LayoutAuto {
		opts = append(opts, engine.WithLayout(o.Layout))
	}
	if o.Pool != nil {
		opts = append(opts, engine.WithPool(o.Pool))
	}
	if o.Spawn {
		opts = append(opts, engine.WithSpawn())
	}
	if o.Stats != nil {
		opts = append(opts, engine.WithScanStats(o.Stats))
	}
	return opts
}

// BuildPoolStats snapshots the dedicated construction pool's scheduling
// counters (the match pool's are read via engine.DefaultPool directly).
func BuildPoolStats() engine.PoolStats { return buildPool().Stats() }

// Compile builds a Set matching every pattern in nodes (already parsed,
// and search-bracketed by the caller if substring semantics are wanted —
// package sfa owns parsing, flags, and bracketing). Rule r of the result
// is nodes[r].
func Compile(nodes []*syntax.Node, o Options) (*Set, error) {
	if len(nodes) == 0 {
		return nil, errors.New("multi: empty rule set")
	}
	if o.Keys != nil && len(o.Keys) != len(nodes) {
		return nil, fmt.Errorf("multi: %d keys for %d rules", len(o.Keys), len(nodes))
	}
	o = o.withDefaults()
	if o.rep == nil {
		o.rep = &buildRecorder{}
	}
	start := time.Now()

	// Per-rule components: the minimal DFA is both the product-
	// construction input and, via a budget-capped D-SFA dry run, the
	// planner's size estimate. Prepared concurrently over the pool —
	// the per-rule dry runs are independent.
	idxs := make([]int, len(nodes))
	for i := range idxs {
		idxs[i] = i
	}
	rules, err := prepRules(nodes, idxs, o)
	if err != nil {
		return nil, err
	}
	prepDone := time.Now()

	builds, err := planAndBuild(rules, o)
	if err != nil {
		return nil, err
	}
	sort.Slice(builds, func(i, j int) bool { return builds[i].bin[0].idx < builds[j].bin[0].idx })
	shards := make([]*shard, len(builds))
	for i, b := range builds {
		shards[i] = b.sh
	}
	s := newSet(shards, len(nodes), o.Pool)
	s.planShards = len(shards)
	s.stats = o.Stats
	s.armPrefilter(o.Prefilter)
	o.rep.note(func(r *BuildReport) {
		r.Rules = len(nodes)
		r.Shards = len(shards)
		r.PrepNs += prepDone.Sub(start).Nanoseconds()
		r.BuildNs += time.Since(prepDone).Nanoseconds()
		r.TotalNs += time.Since(start).Nanoseconds()
	})
	s.report = o.rep.snapshot()
	return s, nil
}

// planAndBuild runs the plan → build → merge pipeline. With a
// prefilter armed, rules are planned in four groups matching the shard
// modes — windowable, prefix-bounded, gateable, uncovered — and merging
// never crosses a boundary: a shard gets a mode only when *every* rule
// in it qualifies, so one uncovered rule sharing a shard with windowable
// (or gateable) ones would demote the whole shard to full scans.
func planAndBuild(rules []planRule, o Options) ([]*shardBuild, error) {
	rules, lazyRules := planLazy(rules, o)
	var builds []*shardBuild
	for _, g := range prefilterGroups(rules, o) {
		bins := plan(g, o)
		o.rep.note(func(r *BuildReport) { r.PlanBins += len(bins) })
		gb, err := buildBins(bins, o)
		if err != nil {
			return nil, err
		}
		if o.ForceShards == 0 && len(gb) > 1 {
			// The packing is pessimistic on purpose; recover
			// over-sharding by merging while the measured sizes say it
			// fits.
			gb, err = mergeShards(gb, o)
			if err != nil {
				return nil, err
			}
		}
		builds = append(builds, gb...)
	}
	// Lazy shards are grouped by prefilter class exactly like eager
	// ones — a windowable lazy shard scans only candidate windows — and
	// never merged (there is no measured table size to merge on).
	for _, g := range prefilterGroups(lazyRules, o) {
		gb, err := buildLazyShards(g, o)
		if err != nil {
			return nil, err
		}
		o.rep.note(func(r *BuildReport) { r.LazyShards += len(gb) })
		builds = append(builds, gb...)
	}
	return builds, nil
}

// prefilterGroups partitions rules into the four prefilter classes —
// windowable, prefix-bounded, gateable, uncovered — so that merging and
// binning never put a rule that would demote a shard's scan mode next
// to rules that qualify for a faster one. Without a prefilter (or under
// ForceShards) everything is one group.
func prefilterGroups(rules []planRule, o Options) [][]planRule {
	if len(rules) == 0 {
		return nil
	}
	if len(o.Prefilter) == 0 || o.ForceShards != 0 {
		return [][]planRule{rules}
	}
	var byClass [4][]planRule
	for _, r := range rules {
		class := 3 // uncovered
		if r.idx < len(o.Prefilter) {
			switch inf := o.Prefilter[r.idx]; {
			case inf.Window:
				class = 0
			case inf.Prefix:
				class = 1
			case inf.Covered():
				class = 2
			}
		}
		byClass[class] = append(byClass[class], r)
	}
	var groups [][]planRule
	for _, g := range byClass {
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	return groups
}
