package multi

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/binio"
	"repro/internal/core"
	"repro/internal/engine"
)

// Binary codec for compiled rule sets. Combined-set construction is the
// expensive step of the whole pipeline (ROADMAP: 15–30 s cold builds for
// large search-bracketed sets, paid ×shards), so compiled shards are the
// artifact worth persisting. Two framings share one shard format:
//
//   - a shard blob: one combined automaton plus the identity keys of the
//     rules it covers, in local mask-bit order. Self-contained and
//     CRC-guarded — the unit the content-addressed cache stores.
//   - a set blob: plan metadata plus every shard blob, length-prefixed —
//     the unit a whole-RuleSet snapshot embeds (sfa.(*RuleSet).Save).
//
// Identity is the same rule-membership contract Recompile reuses shards
// by: a shard is fully determined by the multiset of (pattern, flags)
// keys it covers, never by rule names or global indices — those live in
// the rules[] translation table and are re-derived on decode by matching
// keys against the loading rule list. See internal/snapshot/README.md
// for the byte-level specification and versioning rules.

// ErrNotSerializable is wrapped by Encode when the set contains a lazy
// shard: lazily built product states are a traffic-dependent cache, not
// an artifact, so such sets persist as rule sources and recompile on
// load (serve's snapshot path already falls back to rules-only frames).
var ErrNotSerializable = errors.New("multi: lazy shards are not serializable")

const (
	shardMagic = "SFA\x01SHD\x01"
	setMagic   = "SFA\x01SET\x01"

	// maxShardRules bounds the per-shard rule count a decoder will
	// believe; maxKeyLen bounds one identity key (flag byte + pattern).
	maxShardRules = 1 << 20
	maxKeyLen     = 1 << 20
	// maxShardBlob bounds one embedded shard blob inside a set frame.
	maxShardBlob = 1 << 31
)

// ShardCache is the content-addressed shard store consulted by the
// cache-aware build path. Load returns a reader over the blob stored for
// key, Store writes one (atomically; concurrent Stores of the same key
// may both run — content addressing makes them interchangeable).
// Implementations must be safe for concurrent use; internal/snapshot's
// Store is the on-disk one.
type ShardCache interface {
	Load(key string) (io.ReadCloser, bool)
	Store(key string, write func(io.Writer) error) error
}

// ShardKey returns the content-address of a shard's rule membership: the
// hex SHA-256 of the sorted (pattern, flags) key multiset. Local bit
// order does not change the key — two builds of the same rules in
// different order produce interchangeable shards, the decoder re-derives
// the bit translation by key matching.
func ShardKey(keys []string) string {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	h := sha256.New()
	var len8 [8]byte
	for _, k := range sorted {
		binary.LittleEndian.PutUint64(len8[:], uint64(len(k)))
		h.Write(len8[:])
		h.Write([]byte(k))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// shardCacheKey addresses a shard blob in the content-addressed cache:
// rule membership (ShardKey) plus both build budgets plus the interning
// mode. The budgets are part of the address — not of the blob — because
// a cache directory is shareable between processes: under a
// membership-only key a process with a small SFABudget/DFABudget would
// happily adopt a shard built under a larger budget and silently
// violate its own memory bound (budget-failure tombstones always keyed
// on budgets; shard blobs were the gap). The interning mode is included
// for the same reason failCacheKey's is: both paths' shards are
// verdict-identical, but a VectorIntern build that silently adopts
// tuple-built blobs from a shared directory would defeat the knob's A/B
// purpose (and carry the tuple path's state surplus). The blob format
// itself is unchanged, so whole-set snapshots (which pin their build's
// results by construction) still embed and decode the same bytes.
func shardCacheKey(shardKey string, o Options) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("shard\x00%d\x00%d\x00%s\x00%s", o.DFABudget, o.SFABudget, internMode(o), shardKey)))
	return fmt.Sprintf("%x", h[:])
}

// internMode names the construction strategy for cache addressing.
func internMode(o Options) string {
	if o.VectorIntern {
		return "v"
	}
	return "t"
}

// StableBuildID derives the persisted construction id from a shard's
// content key. The top bit is always set, so ids adopted from snapshots
// can never collide with the small sequential ids engine construction
// issues — a shard whose ShardInfo.BuildID carries the top bit was
// decoded from disk, and identical rule membership yields the identical
// id across processes and restarts.
func StableBuildID(shardKey string) uint64 {
	h := sha256.Sum256([]byte(shardKey))
	return binary.LittleEndian.Uint64(h[:8]) | 1<<63
}

// encodeShard writes one shard blob: the engine's automaton and mask
// table plus the identity keys of its rules in local mask-bit order,
// CRC-32C-guarded.
func encodeShard(w io.Writer, m *engine.MultiSFA, localKeys []string) error {
	h := binio.NewCRC32C()
	cw := io.MultiWriter(w, h)
	if _, err := io.WriteString(cw, shardMagic); err != nil {
		return err
	}
	if err := binio.WriteUvarint(cw, uint64(len(localKeys))); err != nil {
		return err
	}
	for _, k := range localKeys {
		if err := binio.WriteString(cw, k); err != nil {
			return err
		}
	}
	if err := binio.WriteUvarint(cw, uint64(m.Words())); err != nil {
		return err
	}
	var id8 [8]byte
	binary.LittleEndian.PutUint64(id8[:], StableBuildID(ShardKey(localKeys)))
	if _, err := cw.Write(id8[:]); err != nil {
		return err
	}
	var dsfa bytes.Buffer
	if _, err := m.SFA().WriteTo(&dsfa); err != nil {
		return err
	}
	if err := binio.WriteBytes(cw, dsfa.Bytes()); err != nil {
		return err
	}
	if err := core.WriteMaskTable(cw, m.Masks()); err != nil {
		return err
	}
	var crc4 [4]byte
	binary.LittleEndian.PutUint32(crc4[:], h.Sum32())
	_, err := w.Write(crc4[:])
	return err
}

// DecodedShard is one shard reconstructed from a blob: the live engine
// plus the identity keys of its rules in local mask-bit order. Global
// rule indices are not part of the format — callers derive them by
// matching Keys against their own rule list.
type DecodedShard struct {
	Keys    []string
	BuildID uint64
	m       *engine.MultiSFA
}

// DecodeShard reads a shard blob written by encodeShard, verifying the
// CRC before any automaton or table is materialized and validating every
// structural invariant (state counts, transition targets, mask widths,
// stray mask bits) so a corrupt blob errors instead of reaching the
// zero-allocation match path. Matching options (Threads, Layout, Pool,
// Spawn) come from o; the persisted BuildID is adopted.
func DecodeShard(r io.Reader, o Options) (*DecodedShard, error) {
	o = o.withDefaults()
	cr := binio.NewCRCReader(r)
	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("multi: reading shard magic: %w", err)
	}
	if string(magic) != shardMagic {
		return nil, fmt.Errorf("multi: bad shard magic %q", magic)
	}
	nrules, err := binio.ReadCount(cr, maxShardRules, "shard rule")
	if err != nil {
		return nil, err
	}
	if nrules == 0 {
		return nil, fmt.Errorf("multi: shard with no rules")
	}
	// Grow as keys actually decode; the claimed count must not buy a
	// large allocation on its own (the binio rule).
	keys := make([]string, 0, min(nrules, 4096))
	for i := 0; i < nrules; i++ {
		k, err := binio.ReadString(cr, maxKeyLen, "rule key")
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	words, err := binio.ReadCount(cr, maxShardRules/64+1, "mask word")
	if err != nil {
		return nil, err
	}
	if words != maskWords(nrules) {
		return nil, fmt.Errorf("multi: shard mask width %d words, want %d for %d rules",
			words, maskWords(nrules), nrules)
	}
	var id8 [8]byte
	if _, err := io.ReadFull(cr, id8[:]); err != nil {
		return nil, fmt.Errorf("multi: reading build id: %w", err)
	}
	buildID := binary.LittleEndian.Uint64(id8[:])
	dsfaBytes, err := binio.ReadBytes(cr, maxShardBlob, "automaton section")
	if err != nil {
		return nil, err
	}
	maskBytes, err := readMaskSection(cr)
	if err != nil {
		return nil, err
	}
	var crc4 [4]byte
	if _, err := io.ReadFull(r, crc4[:]); err != nil {
		return nil, fmt.Errorf("multi: reading shard crc: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crc4[:]); got != cr.Sum32() {
		return nil, fmt.Errorf("multi: shard crc mismatch (stored %08x, computed %08x)", got, cr.Sum32())
	}

	// CRC holds; now pay for parsing and table materialization.
	if want := StableBuildID(ShardKey(keys)); buildID != want {
		return nil, fmt.Errorf("multi: shard build id %016x does not match its rule membership", buildID)
	}
	dr := bytes.NewReader(dsfaBytes)
	s, err := core.ReadDSFA(dr)
	if err != nil {
		return nil, err
	}
	if dr.Len() != 0 {
		return nil, fmt.Errorf("multi: %d trailing bytes after automaton", dr.Len())
	}
	masks, err := core.ReadMaskTable(bytes.NewReader(maskBytes), s.D.NumStates, words, nrules)
	if err != nil {
		return nil, err
	}
	eopts := append(o.engineOpts(), engine.WithBuildID(buildID))
	m := engine.NewMultiSFA(s, masks, words, o.Threads, eopts...)
	return &DecodedShard{Keys: keys, BuildID: buildID, m: m}, nil
}

// readMaskSection buffers the mask-table bytes (varint count + payload)
// so the CRC can be verified before core.ReadMaskTable parses them.
func readMaskSection(r io.Reader) ([]byte, error) {
	n, err := binio.ReadCount(r, maxShardBlob/8, "mask table")
	if err != nil {
		return nil, err
	}
	payload, err := binio.ReadExact(r, 8*n)
	if err != nil {
		return nil, fmt.Errorf("multi: reading mask table: %w", err)
	}
	var buf bytes.Buffer
	if err := binio.WriteUvarint(&buf, uint64(n)); err != nil {
		return nil, err
	}
	buf.Write(payload)
	return buf.Bytes(), nil
}

// Encode serializes the whole set: plan metadata plus every shard blob.
// keys[i] is rule i's identity key (the Recompile contract); the decoder
// uses them to re-derive the local-bit → global-rule translation.
func (s *Set) Encode(w io.Writer, keys []string) error {
	if len(keys) != s.rules {
		return fmt.Errorf("multi: %d keys for %d rules", len(keys), s.rules)
	}
	if _, err := io.WriteString(w, setMagic); err != nil {
		return err
	}
	if err := binio.WriteUvarint(w, uint64(s.rules)); err != nil {
		return err
	}
	if err := binio.WriteUvarint(w, uint64(s.planShards)); err != nil {
		return err
	}
	if err := binio.WriteUvarint(w, uint64(len(s.shards))); err != nil {
		return err
	}
	var blob bytes.Buffer
	for _, sh := range s.shards {
		blob.Reset()
		local := make([]string, len(sh.rules))
		for i, r := range sh.rules {
			local[i] = keys[r]
		}
		m := eagerEngine(sh.m)
		if m == nil {
			// A lazy shard has no tables to persist — its states are
			// rebuilt from traffic. Callers persist the rule sources
			// instead and recompile on load.
			return fmt.Errorf("%w: shard %v", ErrNotSerializable, sh.rules)
		}
		if err := encodeShard(&blob, m, local); err != nil {
			return err
		}
		if err := binio.WriteBytes(w, blob.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSet reads a set blob written by Encode and reassembles a live
// Set for the rules identified by keys: every decoded shard's key
// multiset must be satisfiable from keys, and together the shards must
// cover every rule exactly once — anything else (corruption, a snapshot
// for a different rule list) is an error, never a silently wrong Set.
func DecodeSet(r io.Reader, keys []string, o Options) (*Set, error) {
	o = o.withDefaults()
	magic := make([]byte, len(setMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("multi: reading set magic: %w", err)
	}
	if string(magic) != setMagic {
		return nil, fmt.Errorf("multi: bad set magic %q", magic)
	}
	nrules, err := binio.ReadCount(r, maxShardRules, "rule")
	if err != nil {
		return nil, err
	}
	if nrules != len(keys) {
		return nil, fmt.Errorf("multi: snapshot has %d rules, loading rule set has %d", nrules, len(keys))
	}
	planShards, err := binio.ReadCount(r, maxShardRules, "plan shard")
	if err != nil {
		return nil, err
	}
	nshards, err := binio.ReadCount(r, maxShardRules, "shard")
	if err != nil {
		return nil, err
	}
	if nshards == 0 || nshards > nrules {
		return nil, fmt.Errorf("multi: implausible shard count %d for %d rules", nshards, nrules)
	}

	// Multiset of rule indices per key, consumed front-to-back so
	// duplicate patterns pair up deterministically (the Recompile rule).
	byKey := make(map[string][]int, len(keys))
	for i, k := range keys {
		byKey[k] = append(byKey[k], i)
	}
	assigned := 0
	shards := make([]*shard, 0, nshards)
	for i := 0; i < nshards; i++ {
		blobLen, err := binio.ReadCount(r, maxShardBlob, "shard blob byte")
		if err != nil {
			return nil, err
		}
		lr := &io.LimitedReader{R: r, N: int64(blobLen)}
		ds, err := DecodeShard(lr, o)
		if err != nil {
			return nil, fmt.Errorf("multi: shard %d: %w", i, err)
		}
		if lr.N != 0 {
			return nil, fmt.Errorf("multi: shard %d: %d trailing bytes in frame", i, lr.N)
		}
		rules := make([]int, len(ds.Keys))
		for j, k := range ds.Keys {
			q := byKey[k]
			if len(q) == 0 {
				return nil, fmt.Errorf("multi: shard %d covers a rule not in the loading set (key %.32q…)", i, k)
			}
			rules[j], byKey[k] = q[0], q[1:]
		}
		assigned += len(rules)
		shards = append(shards, &shard{m: ds.m, rules: rules})
	}
	if assigned != nrules {
		return nil, fmt.Errorf("multi: shards cover %d of %d rules", assigned, nrules)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].rules[0] < shards[j].rules[0] })
	s := newSet(shards, nrules, o.Pool)
	s.stats = o.Stats
	// planShards is Recompile's consolidation baseline; it may
	// legitimately differ from the current shard count in either
	// direction (incremental adds, removals of reused shards).
	s.planShards = planShards
	if s.planShards == 0 {
		s.planShards = len(shards)
	}
	// Decoded engines are membership-keyed, so arming (or not arming) the
	// prefilter never invalidates them; callers that want filtered scans
	// re-extract from the rule definitions and pass the infos here.
	s.armPrefilter(o.Prefilter)
	return s, nil
}

// Cached size estimates. The planner needs every rule's capped D-SFA
// dry run just to pack bins — on a fully warm build those dry runs ARE
// the remaining cold cost (the shards themselves load from disk). An
// estimate is a pure function of the rule's identity key and the shard
// budget (the pipeline is deterministic), so it is cached as a tiny
// sibling entry and a warm build plans without constructing anything.

const estMagic = "SFA\x01EST\x01"

// estCacheKey addresses a rule's cached estimate under a budget.
func estCacheKey(ruleKey string, budget int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("est\x00%d\x00%s", budget, ruleKey)))
	return fmt.Sprintf("%x", h[:])
}

// loadCachedEst returns the cached (est, dfaStates, fits-budget) for a
// rule, if present and intact.
func loadCachedEst(ruleKey string, o Options) (est, states int, fits, ok bool) {
	rc, found := o.Cache.Load(estCacheKey(ruleKey, o.SFABudget))
	if !found {
		return 0, 0, false, false
	}
	defer rc.Close()
	cr := binio.NewCRCReader(rc)
	magic := make([]byte, len(estMagic))
	if _, err := io.ReadFull(cr, magic); err != nil || string(magic) != estMagic {
		return 0, 0, false, false
	}
	var fb [1]byte
	if _, err := io.ReadFull(cr, fb[:]); err != nil || fb[0] > 1 {
		return 0, 0, false, false
	}
	est, err := binio.ReadCount(cr, uint64(o.SFABudget)+1, "estimate")
	if err != nil || est < 1 {
		return 0, 0, false, false
	}
	states, err = binio.ReadCount(cr, 1<<28, "component DFA state")
	if err != nil || states < 1 {
		return 0, 0, false, false
	}
	var crc4 [4]byte
	if _, err := io.ReadFull(rc, crc4[:]); err != nil {
		return 0, 0, false, false
	}
	if binary.LittleEndian.Uint32(crc4[:]) != cr.Sum32() {
		return 0, 0, false, false
	}
	return est, states, fb[0] == 1, true
}

// storeCachedEst persists a rule's estimate and component-DFA size,
// best-effort.
func storeCachedEst(ruleKey string, est, states int, fits bool, o Options) {
	_ = o.Cache.Store(estCacheKey(ruleKey, o.SFABudget), func(w io.Writer) error {
		h := binio.NewCRC32C()
		cw := io.MultiWriter(w, h)
		if _, err := io.WriteString(cw, estMagic); err != nil {
			return err
		}
		fb := byte(0)
		if fits {
			fb = 1
		}
		if _, err := cw.Write([]byte{fb}); err != nil {
			return err
		}
		if err := binio.WriteUvarint(cw, uint64(est)); err != nil {
			return err
		}
		if err := binio.WriteUvarint(cw, uint64(states)); err != nil {
			return err
		}
		var crc4 [4]byte
		binary.LittleEndian.PutUint32(crc4[:], h.Sum32())
		_, err := w.Write(crc4[:])
		return err
	})
}

// Cached budget failures. The merge pass (and blow-up splitting) learns
// which rule combinations exceed their budgets by paying for a capped
// construction attempt that fails — a few hundred milliseconds each. On
// a warm build those doomed attempts would be re-paid verbatim, so a
// budget failure is recorded as a tombstone keyed by membership AND both
// budgets (a bigger budget must retry honestly). A tombstone only
// short-circuits to the same ErrBudget the deterministic attempt would
// produce; a stale or corrupt one merely costs the attempt again.

const failMagic = "SFA\x01NOP\x01"

// failCacheKey addresses a budget-failure tombstone. The interning mode
// is part of the key: tuple interning's state count is an upper bound on
// vector interning's, so a tuple-mode failure must not short-circuit a
// vector-mode (A/B) attempt that could still fit.
func failCacheKey(shardKey string, o Options) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("fail\x00%d\x00%d\x00%s\x00%s", o.DFABudget, o.SFABudget, internMode(o), shardKey)))
	return fmt.Sprintf("%x", h[:])
}

// hasFailMarker reports a recorded budget failure for this membership
// under these budgets.
func hasFailMarker(shardKey string, o Options) bool {
	rc, ok := o.Cache.Load(failCacheKey(shardKey, o))
	if !ok {
		return false
	}
	defer rc.Close()
	magic := make([]byte, len(failMagic))
	if _, err := io.ReadFull(rc, magic); err != nil {
		return false
	}
	return string(magic) == failMagic
}

// storeFailMarker records a budget failure, best-effort.
func storeFailMarker(shardKey string, o Options) {
	_ = o.Cache.Store(failCacheKey(shardKey, o), func(w io.Writer) error {
		_, err := io.WriteString(w, failMagic)
		return err
	})
}
