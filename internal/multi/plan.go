package multi

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
)

// logEst is a rule's packing weight under the product bound.
func logEst(r planRule) float64 {
	if r.est < 2 {
		return math.Log(2)
	}
	return math.Log(float64(r.est))
}

// planRule is one rule as the planner sees it: its global index, its
// minimal component DFA, and an estimated automaton size. sfa holds the
// estimation dry run's D-SFA when it fit the budget, so a rule that ends
// up in a shard of its own is never built twice.
type planRule struct {
	idx int
	d   *dfa.DFA
	est int
	sfa *core.DSFA
}

// estimateSFA sizes a rule for greedy shard assignment by dry-running
// the D-SFA construction under the shard budget. The D-SFA — not the
// DFA — is the automaton whose size a shard is budgeted on, and no
// static bound predicts it (Sect. VII shows it ranges from |D| to
// exponential), so the capped build is the estimator. Rules over budget
// report est = budget+1 (and a nil D-SFA), forcing a dedicated shard.
func estimateSFA(d *dfa.DFA, budget int) (int, *core.DSFA) {
	s, err := core.BuildDSFA(d, budget)
	if err != nil {
		return budget + 1, nil
	}
	return s.NumStates, s
}

// plan assigns rules to bins greedily by estimated automaton size.
//
// The combined D-SFA's states are reachable tuples of component SFA
// states, so the combined size lies between max(est) — every component
// projection is onto — and Πest. For the scan workload's unanchored
// rules the product end dominates (independent monoids compose nearly
// freely), so bins are packed first-fit-decreasing against Σ log est ≤
// log SFABudget (a product bound), with Σ|D| under the product-DFA
// budget as a side constraint. Correlated rules that would have fit
// together anyway only cost extra shards, not failed builds; the rare
// under-prediction is caught by buildShards' budget checks and split.
//
// With ForceShards = K the rules are instead spread over exactly K bins
// by longest-processing-time scheduling: sorted by estimate descending,
// each placed in the currently lightest bin.
func plan(rules []planRule, o Options) [][]planRule {
	sorted := make([]planRule, len(rules))
	copy(sorted, rules)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].est > sorted[j].est })

	var bins [][]planRule
	if k := o.ForceShards; k > 0 {
		if k > len(rules) {
			k = len(rules)
		}
		bins = make([][]planRule, k)
		load := make([]float64, k)
		for _, r := range sorted {
			lightest := 0
			for b := 1; b < k; b++ {
				if load[b] < load[lightest] {
					lightest = b
				}
			}
			bins[lightest] = append(bins[lightest], r)
			load[lightest] += logEst(r)
		}
	} else {
		budget := math.Log(float64(o.SFABudget))
		var estLoad []float64
		var dfaLoad []int
		for _, r := range sorted {
			placed := false
			for b := range bins {
				if estLoad[b]+logEst(r) <= budget && dfaLoad[b]+r.d.NumStates <= o.DFABudget {
					bins[b] = append(bins[b], r)
					estLoad[b] += logEst(r)
					dfaLoad[b] += r.d.NumStates
					placed = true
					break
				}
			}
			if !placed {
				bins = append(bins, []planRule{r})
				estLoad = append(estLoad, logEst(r))
				dfaLoad = append(dfaLoad, r.d.NumStates)
			}
		}
	}
	// Deterministic rule order within each bin; drop empty forced bins.
	out := bins[:0]
	for _, bin := range bins {
		if len(bin) == 0 {
			continue
		}
		sort.Slice(bin, func(i, j int) bool { return bin[i].idx < bin[j].idx })
		out = append(out, bin)
	}
	return out
}

// maxMapEntries bounds the mapping storage a *capped* D-SFA attempt may
// intern before giving up: cap × |D| int16 entries. Without it a capped
// build over a large product DFA does cap·|D| work just to fail — the
// failure must be cheap for the split-and-retry loop to be practical.
// 32 Mi entries is 64 MiB of vectors, a few hundred milliseconds.
const maxMapEntries = 32 << 20

// sfaCapFor derives the effective D-SFA cap for a shard attempt from the
// state budget and the mapping-cost bound.
func sfaCapFor(budget, dfaStates int) int {
	if c := maxMapEntries / dfaStates; c < budget {
		return c
	}
	return budget
}

// shardBuild pairs a materialized shard with the plan bin it came from,
// so the merge pass can recombine bins.
type shardBuild struct {
	bin    []planRule
	sh     *shard
	frozen bool // a merge attempt involving this shard failed
}

// isBudgetErr reports whether err is a state-budget overrun (the
// condition the planner reacts to by splitting or freezing).
func isBudgetErr(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, core.ErrTooManyStates)
}

// buildShards materializes one planned bin, recursively halving it (LPT
// by estimate) whenever the product DFA or the combined D-SFA overruns
// its budget. A single-rule shard that still overruns is built uncapped:
// that is exactly the cost the isolated per-rule engine would pay, so
// the fallback never rejects a rule set the old path accepted.
func buildShards(bin []planRule, o Options) ([]*shardBuild, error) {
	maxEst := 0
	for _, r := range bin {
		if r.est > maxEst {
			maxEst = r.est
		}
	}
	if len(bin) == 1 {
		// Reuse the estimation dry run's D-SFA when it fit the budget —
		// the shard-of-one build would reproduce it exactly.
		if r := bin[0]; r.sfa != nil {
			return []*shardBuild{{bin: bin, sh: singleRuleShard(r, o)}}, nil
		}
		// The max(est) lower bound says a capped attempt cannot succeed;
		// go straight to the uncapped isolated-equivalent build. Freeze
		// the result: no merge can fit an over-budget component.
		s, err := buildShard(bin, o, false)
		if err != nil {
			return nil, fmt.Errorf("multi: rule %d alone exceeds construction limits: %w", bin[0].idx, err)
		}
		return []*shardBuild{{bin: bin, sh: s, frozen: true}}, nil
	}
	// Multi-rule bin: attempt only when the lower bound fits (forced
	// plans can pack over-budget rules together); otherwise split.
	if maxEst <= o.SFABudget {
		s, err := buildShard(bin, o, true)
		if err == nil {
			return []*shardBuild{{bin: bin, sh: s}}, nil
		}
		if !isBudgetErr(err) {
			return nil, err
		}
	}
	halves := plan(bin, Options{ForceShards: 2})
	var builds []*shardBuild
	for _, half := range halves {
		built, err := buildShards(half, o)
		if err != nil {
			return nil, err
		}
		builds = append(builds, built...)
	}
	return builds, nil
}

// maxMergeFails bounds the merge pass' wasted work: each failed merge
// attempt costs up to maxMapEntries of interning before the budget
// fires.
const maxMergeFails = 4

// mergeShards greedily recombines shards after the initial build: the
// product-bound packing is deliberately pessimistic (correlated rules —
// shared anchors, shared .* brackets — combine far below the product of
// their sizes), and every shard fewer is one fewer pass over every
// input. Each round tries to merge the two smallest unfrozen shards by
// measured D-SFA size; a budget failure freezes the smaller one. The
// pass stops when fewer than two shards remain unfrozen or after
// maxMergeFails failures, so construction time stays bounded.
func mergeShards(builds []*shardBuild, o Options) ([]*shardBuild, error) {
	fails := 0
	for fails < maxMergeFails {
		var cand []*shardBuild
		for _, b := range builds {
			if !b.frozen {
				cand = append(cand, b)
			}
		}
		if len(cand) < 2 {
			break
		}
		sort.Slice(cand, func(i, j int) bool {
			si, sj := cand[i].sh.m.SFA().NumStates, cand[j].sh.m.SFA().NumStates
			if si != sj {
				return si < sj
			}
			return cand[i].bin[0].idx < cand[j].bin[0].idx
		})
		a, b := cand[0], cand[1]
		bin := make([]planRule, 0, len(a.bin)+len(b.bin))
		bin = append(append(bin, a.bin...), b.bin...)
		sort.Slice(bin, func(i, j int) bool { return bin[i].idx < bin[j].idx })
		merged, err := buildShard(bin, o, true)
		if err != nil {
			if !isBudgetErr(err) {
				return nil, err
			}
			a.frozen = true
			fails++
			continue
		}
		next := builds[:0]
		for _, x := range builds {
			if x != a && x != b {
				next = append(next, x)
			}
		}
		builds = append(next, &shardBuild{bin: bin, sh: merged})
	}
	return builds, nil
}

// singleRuleShard wraps a rule's own estimation D-SFA as a one-rule
// shard: the mask table is just the DFA's accept vector on bit 0.
func singleRuleShard(r planRule, o Options) *shard {
	masks := make([]uint64, r.d.NumStates)
	for q, acc := range r.d.Accept {
		if acc {
			masks[q] = 1
		}
	}
	m := engine.NewMultiSFA(r.sfa, masks, 1, o.Threads, o.engineOpts()...)
	return &shard{m: m, rules: []int{r.idx}}
}

// buildShard runs the combined pipeline — product DFA, mask-aware
// minimization, D-SFA — for one bin. capped=false lifts the budgets to
// the construction's hard limits (the single-rule fallback).
func buildShard(bin []planRule, o Options, capped bool) (*shard, error) {
	ds := make([]*dfa.DFA, len(bin))
	rules := make([]int, len(bin))
	for i, r := range bin {
		ds[i] = r.d
		rules[i] = r.idx
	}
	dfaBudget := 0
	if capped {
		dfaBudget = o.DFABudget
	}
	d, masks, err := productDFA(ds, dfaBudget)
	if err != nil {
		return nil, err
	}
	words := maskWords(len(bin))
	d, masks = minimizeMasked(d, masks, words)
	sfaCap := o.SFAHardCap
	if capped {
		sfaCap = sfaCapFor(o.SFABudget, d.NumStates)
	}
	s, err := core.BuildDSFA(d, sfaCap)
	if err != nil {
		return nil, err
	}
	m := engine.NewMultiSFA(s, masks, words, o.Threads, o.engineOpts()...)
	return &shard{m: m, rules: rules}, nil
}
