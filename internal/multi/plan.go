package multi

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// logEst is a rule's packing weight under the product bound.
func logEst(r planRule) float64 {
	if r.est < 2 {
		return math.Log(2)
	}
	return math.Log(float64(r.est))
}

// planRule is one rule as the planner sees it: its global index, its
// identity key (empty when caching is off), its (possibly lazy) minimal
// component DFA, and an estimated automaton size. sfa holds the
// estimation dry run's D-SFA when it fit the budget, so a rule that
// ends up in a shard of its own is never built twice; s hands the same
// automaton (built on demand on a warm plan) to the tuple-interned
// combined construction, which closes the shard's D-SFA over tuples of
// component D-SFA states.
type planRule struct {
	idx    int
	key    string
	d      *lazyDFA
	s      *lazySFA
	states int // minimal component DFA size (plan's side constraint)
	est    int
	fits   bool // a capped dry run succeeded (this process or cached)
	sfa    *core.DSFA
}

// lazyDFA defers a rule's component-DFA construction until a shard
// build actually needs it: on a fully warm build (cached estimates +
// cached shards) no component DFA is ever constructed. The pointer is
// shared by every planRule copy, so the build happens at most once even
// across concurrent bins.
type lazyDFA struct {
	node *syntax.Node
	cap  int
	once sync.Once
	d    *dfa.DFA
	err  error
}

func (l *lazyDFA) get() (*dfa.DFA, error) {
	l.once.Do(func() {
		if l.d != nil {
			return
		}
		a, err := nfa.Glushkov(l.node)
		if err != nil {
			l.err = err
			return
		}
		d, err := dfa.Determinize(a, l.cap)
		if err != nil {
			l.err = err
			return
		}
		l.d = dfa.Minimize(d)
	})
	return l.d, l.err
}

// lazySFA defers a rule's component D-SFA construction — the input the
// tuple-interned combined builder consumes — until a shard build
// actually needs it. Seeded with the estimation dry run's automaton when
// that ran in-process (the common cold path); on a warm plan (cached
// estimates) it rebuilds under the identical cap, so the result is the
// automaton the dry run produced. Shared by pointer across planRule
// copies like lazyDFA, so the build happens at most once per rule even
// across the merge pass's recombined bins.
type lazySFA struct {
	d      *lazyDFA
	budget int // the shard SFA budget; the effective cap derives per-DFA
	once   sync.Once
	s      *core.DSFA
	err    error
}

func (l *lazySFA) get() (*core.DSFA, error) {
	l.once.Do(func() {
		if l.s != nil {
			return
		}
		m, err := l.d.get()
		if err != nil {
			l.err = err
			return
		}
		l.s, l.err = core.BuildDSFA(m, sfaCapFor(l.budget, m.NumStates))
	})
	return l.s, l.err
}

// prepRules compiles the listed rules' component DFAs and size
// estimates, fanned out over the worker pool — the per-rule dry runs
// are independent, and construction latency is exactly what the
// snapshot subsystem exists to hide. idxs selects which global rules of
// nodes to prepare (Recompile preps only the fresh subset).
func prepRules(nodes []*syntax.Node, idxs []int, o Options) ([]planRule, error) {
	rules := make([]planRule, len(idxs))
	errs := make([]error, len(idxs))
	buildPool().Map(len(idxs), func(j int) {
		i := idxs[j]
		key := ""
		if o.Keys != nil {
			key = o.Keys[i]
		}
		rules[j], errs[j] = prepRule(nodes[i], i, key, o)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rules, nil
}

func prepRule(node *syntax.Node, idx int, key string, o Options) (planRule, error) {
	// On a warm build the per-rule constructions — the component DFA and
	// the estimation dry run — ARE the remaining cold cost (the shards
	// themselves load from disk). Both the estimate and the DFA's size
	// are pure functions of rule identity and budget, so they are cached
	// as a tiny sibling entry, and a warm plan constructs nothing: the
	// component DFA stays lazy, materialized only if a shard build
	// actually misses.
	if o.Cache != nil && key != "" {
		if est, states, fits, ok := loadCachedEst(key, o); ok {
			o.rep.note(func(r *BuildReport) { r.EstCacheHits++ })
			// The stored est is used verbatim — including the cap+1 form
			// a clipped-cap failure produces — so a warm plan packs the
			// exact bins the cold plan did and every shard key matches.
			d := &lazyDFA{node: node, cap: o.PerRuleDFACap}
			return planRule{
				idx: idx, key: key,
				d:      d,
				s:      &lazySFA{d: d, budget: o.SFABudget},
				states: states,
				est:    est,
				fits:   fits,
			}, nil
		}
	}
	l := &lazyDFA{node: node, cap: o.PerRuleDFACap}
	m, err := l.get()
	if err != nil {
		return planRule{}, fmt.Errorf("multi: rule %d: %w", idx, err)
	}
	est, s, err := estimateSFA(m, sfaCapFor(o.SFABudget, m.NumStates))
	if err != nil {
		return planRule{}, fmt.Errorf("multi: rule %d: %w", idx, err)
	}
	if o.Cache != nil && key != "" {
		storeCachedEst(key, est, m.NumStates, s != nil, o)
	}
	return planRule{
		idx: idx, key: key,
		d:      l,
		s:      &lazySFA{d: l, budget: o.SFABudget, s: s},
		states: m.NumStates,
		est:    est,
		fits:   s != nil,
		sfa:    s,
	}, nil
}

// constructionPool is the dedicated worker pool for build-time fan-out
// (per-rule preparation, per-bin shard builds). It is deliberately NOT
// the match pool: Pool.Run's help-while-waiting protocol lets a waiter
// pop any queued chunk, so multi-second shard-build chunks on the match
// pool would stall concurrent scans (a serving hot reload must never
// freeze another tenant's millisecond Match). Workers park on a channel
// when idle, so the extra pool costs nothing between builds.
var (
	constructionPoolOnce sync.Once
	constructionPool     *engine.Pool
)

// buildPool returns the pool construction work fans out on.
func buildPool() *engine.Pool {
	constructionPoolOnce.Do(func() { constructionPool = engine.NewPool(0) })
	return constructionPool
}

// buildBins materializes every planned bin, bins in parallel over the
// pool (each bin's recursive split-and-retry stays sequential within its
// task). Results keep bin order, so the final shard order is as
// deterministic as the sequential build's was.
func buildBins(bins [][]planRule, o Options) ([]*shardBuild, error) {
	perBin := make([][]*shardBuild, len(bins))
	errs := make([]error, len(bins))
	buildPool().Map(len(bins), func(i int) {
		perBin[i], errs[i] = buildShards(bins[i], o)
	})
	var builds []*shardBuild
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		builds = append(builds, perBin[i]...)
	}
	return builds, nil
}

// estimateSFA sizes a rule for greedy shard assignment by dry-running
// the D-SFA construction under the shard budget. The D-SFA — not the
// DFA — is the automaton whose size a shard is budgeted on, and no
// static bound predicts it (Sect. VII shows it ranges from |D| to
// exponential), so the capped build is the estimator. Rules over budget
// report est = budget+1 (and a nil D-SFA), forcing a dedicated shard.
// Only a genuine cap overrun means "over budget": any other construction
// failure (a component DFA past core.MaxDFAStates can never build at
// ANY budget) is a real error that must surface to the caller, not be
// re-attempted down the split path.
func estimateSFA(d *dfa.DFA, budget int) (int, *core.DSFA, error) {
	s, err := core.BuildDSFA(d, budget)
	if err != nil {
		if errors.Is(err, core.ErrTooManyStates) {
			return budget + 1, nil, nil
		}
		return 0, nil, err
	}
	return s.NumStates, s, nil
}

// plan assigns rules to bins greedily by estimated automaton size.
//
// The combined D-SFA's states are reachable tuples of component SFA
// states, so the combined size lies between max(est) — every component
// projection is onto — and Πest. For the scan workload's unanchored
// rules the product end dominates (independent monoids compose nearly
// freely), so bins are packed first-fit-decreasing against Σ log est ≤
// log SFABudget (a product bound), with Σ|D| under the product-DFA
// budget as a side constraint. Correlated rules that would have fit
// together anyway only cost extra shards, not failed builds; the rare
// under-prediction is caught by buildShards' budget checks and split.
//
// With ForceShards = K the rules are instead spread over exactly K bins
// by longest-processing-time scheduling: sorted by estimate descending,
// each placed in the currently lightest bin.
func plan(rules []planRule, o Options) [][]planRule {
	sorted := make([]planRule, len(rules))
	copy(sorted, rules)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].est > sorted[j].est })

	var bins [][]planRule
	if k := o.ForceShards; k > 0 {
		if k > len(rules) {
			k = len(rules)
		}
		bins = make([][]planRule, k)
		load := make([]float64, k)
		for _, r := range sorted {
			lightest := 0
			for b := 1; b < k; b++ {
				if load[b] < load[lightest] {
					lightest = b
				}
			}
			bins[lightest] = append(bins[lightest], r)
			load[lightest] += logEst(r)
		}
	} else {
		budget := math.Log(float64(o.SFABudget))
		var estLoad []float64
		var dfaLoad []int
		for _, r := range sorted {
			placed := false
			for b := range bins {
				if estLoad[b]+logEst(r) <= budget && dfaLoad[b]+r.states <= o.DFABudget {
					bins[b] = append(bins[b], r)
					estLoad[b] += logEst(r)
					dfaLoad[b] += r.states
					placed = true
					break
				}
			}
			if !placed {
				bins = append(bins, []planRule{r})
				estLoad = append(estLoad, logEst(r))
				dfaLoad = append(dfaLoad, r.states)
			}
		}
	}
	// Deterministic rule order within each bin; drop empty forced bins.
	out := bins[:0]
	for _, bin := range bins {
		if len(bin) == 0 {
			continue
		}
		sort.Slice(bin, func(i, j int) bool { return bin[i].idx < bin[j].idx })
		out = append(out, bin)
	}
	return out
}

// maxMapEntries bounds the mapping storage a *capped* D-SFA attempt may
// intern before giving up: cap × |D| int16 entries. Without it a capped
// build over a large product DFA does cap·|D| work just to fail — the
// failure must be cheap for the split-and-retry loop to be practical.
// 32 Mi entries is 64 MiB of vectors, a few hundred milliseconds.
const maxMapEntries = 32 << 20

// sfaCapFor derives the effective D-SFA cap for a shard attempt from the
// state budget and the mapping-cost bound.
func sfaCapFor(budget, dfaStates int) int {
	if c := maxMapEntries / dfaStates; c < budget {
		return c
	}
	return budget
}

// shardBuild pairs a materialized shard with the plan bin it came from,
// so the merge pass can recombine bins.
type shardBuild struct {
	bin    []planRule
	sh     *shard
	frozen bool // a merge attempt involving this shard failed
}

// isBudgetErr reports whether err is a state-budget overrun (the
// condition the planner reacts to by splitting or freezing).
func isBudgetErr(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, core.ErrTooManyStates)
}

// buildShards materializes one planned bin, recursively halving it (LPT
// by estimate) whenever the product DFA or the combined D-SFA overruns
// its budget. A single-rule shard that still overruns is built uncapped:
// that is exactly the cost the isolated per-rule engine would pay, so
// the fallback never rejects a rule set the old path accepted.
func buildShards(bin []planRule, o Options) ([]*shardBuild, error) {
	maxEst := 0
	for _, r := range bin {
		if r.est > maxEst {
			maxEst = r.est
		}
	}
	if len(bin) == 1 {
		// A cached copy still beats wrapping the estimation dry run: the
		// adopted stable BuildID keeps warm shards observable, and the
		// decode skips the mask/table materialization path below.
		if key := binCacheKey(bin, o); key != "" {
			if sh := loadCachedShard(key, bin, o); sh != nil {
				return []*shardBuild{{bin: bin, sh: sh}}, nil
			}
		}
		// Reuse the estimation dry run's D-SFA when it fit the budget —
		// the shard-of-one build would reproduce it exactly.
		if r := bin[0]; r.sfa != nil {
			sh := singleRuleShard(r, o)
			storeShard(binCacheKey(bin, o), sh, bin, o)
			return []*shardBuild{{bin: bin, sh: sh}}, nil
		}
		// A cached estimate said a capped build succeeds but supplied no
		// dry-run automaton (and the shard-cache probe above missed):
		// rebuild it capped like any in-budget shard. A dry run that
		// failed *this process* (sfa == nil, fits == false) skips this —
		// re-running the identical capped attempt would just re-pay the
		// failure the estimate already measured.
		// probe=false: the single-rule probe above already missed.
		if r := bin[0]; r.fits {
			s, err := buildShard(bin, o, true, false)
			if err == nil {
				return []*shardBuild{{bin: bin, sh: s}}, nil
			}
			if !isBudgetErr(err) {
				return nil, err
			}
			// Stale estimate; fall through to the uncapped fallback.
		}
		// The max(est) lower bound says a capped attempt cannot succeed;
		// go straight to the uncapped isolated-equivalent build. Freeze
		// the result: no merge can fit an over-budget component.
		s, err := buildShard(bin, o, false, false)
		if err != nil {
			return nil, fmt.Errorf("multi: rule %d alone exceeds construction limits: %w", bin[0].idx, err)
		}
		return []*shardBuild{{bin: bin, sh: s, frozen: true}}, nil
	}
	// Multi-rule bin: attempt only when the lower bound fits (forced
	// plans can pack over-budget rules together); otherwise split.
	if maxEst <= o.SFABudget {
		s, err := buildShard(bin, o, true, true)
		if err == nil {
			return []*shardBuild{{bin: bin, sh: s}}, nil
		}
		if !isBudgetErr(err) {
			return nil, err
		}
	}
	o.rep.note(func(r *BuildReport) { r.Splits++ })
	halves := plan(bin, Options{ForceShards: 2})
	var builds []*shardBuild
	for _, half := range halves {
		built, err := buildShards(half, o)
		if err != nil {
			return nil, err
		}
		builds = append(builds, built...)
	}
	return builds, nil
}

// maxMergeFails bounds the merge pass' wasted work: each failed merge
// attempt costs up to maxMapEntries of interning before the budget
// fires.
const maxMergeFails = 4

// mergeShards greedily recombines shards after the initial build: the
// product-bound packing is deliberately pessimistic (correlated rules —
// shared anchors, shared .* brackets — combine far below the product of
// their sizes), and every shard fewer is one fewer pass over every
// input. Each round tries to merge the two smallest unfrozen shards by
// measured D-SFA size; a budget failure freezes the smaller one. The
// pass stops when fewer than two shards remain unfrozen or after
// maxMergeFails failures, so construction time stays bounded.
func mergeShards(builds []*shardBuild, o Options) ([]*shardBuild, error) {
	fails := 0
	for fails < maxMergeFails {
		var cand []*shardBuild
		for _, b := range builds {
			if !b.frozen {
				cand = append(cand, b)
			}
		}
		if len(cand) < 2 {
			break
		}
		sort.Slice(cand, func(i, j int) bool {
			// Unfrozen shards are always eager (lazy builds are frozen),
			// so the unwrap cannot return nil here.
			si, sj := eagerEngine(cand[i].sh.m).SFA().NumStates, eagerEngine(cand[j].sh.m).SFA().NumStates
			if si != sj {
				return si < sj
			}
			return cand[i].bin[0].idx < cand[j].bin[0].idx
		})
		a, b := cand[0], cand[1]
		bin := make([]planRule, 0, len(a.bin)+len(b.bin))
		bin = append(append(bin, a.bin...), b.bin...)
		sort.Slice(bin, func(i, j int) bool { return bin[i].idx < bin[j].idx })
		merged, err := buildShard(bin, o, true, true)
		if err != nil {
			if !isBudgetErr(err) {
				return nil, err
			}
			a.frozen = true
			fails++
			o.rep.note(func(r *BuildReport) { r.MergeFails++ })
			continue
		}
		o.rep.note(func(r *BuildReport) { r.Merges++ })
		next := builds[:0]
		for _, x := range builds {
			if x != a && x != b {
				next = append(next, x)
			}
		}
		builds = append(next, &shardBuild{bin: bin, sh: merged})
	}
	return builds, nil
}

// singleRuleShard wraps a rule's own estimation D-SFA as a one-rule
// shard: the mask table is just the DFA's accept vector on bit 0. Only
// called when r.sfa is set, which implies the component DFA was built.
func singleRuleShard(r planRule, o Options) *shard {
	start := time.Now()
	d, _ := r.d.get()
	masks := make([]uint64, d.NumStates)
	for q, acc := range d.Accept {
		if acc {
			masks[q] = 1
		}
	}
	m := engine.NewMultiSFA(r.sfa, masks, 1, o.Threads, o.engineOpts()...)
	elapsed := time.Since(start).Nanoseconds()
	o.rep.note(func(r *BuildReport) {
		r.Built++
		r.ShardBuildNs = append(r.ShardBuildNs, elapsed)
	})
	return &shard{m: m, rules: []int{r.idx}}
}

// binCacheKey returns the bin's cache address — rule membership plus
// the build budgets (see shardCacheKey) — or "" when caching is off or
// any rule lacks an identity key.
func binCacheKey(bin []planRule, o Options) string {
	if o.Cache == nil {
		return ""
	}
	keys := make([]string, len(bin))
	for i, r := range bin {
		if r.key == "" {
			return ""
		}
		keys[i] = r.key
	}
	return shardCacheKey(ShardKey(keys), o)
}

// loadCachedShard probes the content-addressed cache for a prebuilt
// shard covering exactly bin's rule membership. Any failure — missing
// entry, corrupt blob, membership mismatch — reports a miss and falls
// back to building; the cache can never make a build wrong, only fast.
func loadCachedShard(key string, bin []planRule, o Options) *shard {
	rc, ok := o.Cache.Load(key)
	if !ok {
		return nil
	}
	defer rc.Close()
	ds, err := DecodeShard(rc, o)
	if err != nil {
		return nil
	}
	rules, ok := matchShardKeys(ds.Keys, bin)
	if !ok {
		return nil
	}
	o.rep.note(func(r *BuildReport) { r.CacheHits++ })
	return &shard{m: ds.m, rules: rules}
}

// matchShardKeys maps a decoded shard's local-bit keys onto bin's global
// rule indices (multiset matching; duplicates pair front-to-back).
func matchShardKeys(local []string, bin []planRule) ([]int, bool) {
	if len(local) != len(bin) {
		return nil, false
	}
	byKey := make(map[string][]int, len(bin))
	for _, r := range bin {
		byKey[r.key] = append(byKey[r.key], r.idx)
	}
	rules := make([]int, len(local))
	for i, k := range local {
		q := byKey[k]
		if len(q) == 0 {
			return nil, false
		}
		rules[i], byKey[k] = q[0], q[1:]
	}
	return rules, true
}

// storeShard writes a freshly built shard to the cache, best-effort: a
// full disk or racing writer never fails the build.
func storeShard(key string, sh *shard, bin []planRule, o Options) {
	if key == "" {
		return
	}
	m := eagerEngine(sh.m)
	if m == nil {
		return
	}
	local := make([]string, len(bin))
	for i, r := range bin {
		local[i] = r.key
	}
	_ = o.Cache.Store(key, func(w io.Writer) error {
		return encodeShard(w, m, local)
	})
}

// buildShard runs the combined pipeline — product DFA, mask-aware
// minimization, tuple-interned D-SFA (vector-interned for single-rule
// bins or under Options.VectorIntern) — for one bin, after probing the
// shard cache: a content hit skips construction entirely and adopts the
// persisted automaton (and its stable BuildID). capped=false lifts the
// budgets to the construction's hard limits (the single-rule fallback);
// cache entries are keyed by rule membership plus both budgets, so a
// hit can only adopt a shard some same-budget process built.
func buildShard(bin []planRule, o Options, capped, probe bool) (*shard, error) {
	cacheKey := binCacheKey(bin, o)
	if cacheKey != "" {
		if probe {
			if sh := loadCachedShard(cacheKey, bin, o); sh != nil {
				return sh, nil
			}
		}
		// A recorded budget failure for this membership under these
		// budgets short-circuits the doomed capped attempt (the merge
		// pass re-discovers the same failures on every cold start
		// otherwise — each costing a full construction attempt).
		if capped && hasFailMarker(cacheKey, o) {
			return nil, fmt.Errorf("%w (cached failure for this membership)", ErrBudget)
		}
	}
	// markBudgetErr records capped budget failures for the next build.
	markBudgetErr := func(err error) error {
		if capped && cacheKey != "" && isBudgetErr(err) {
			storeFailMarker(cacheKey, o)
		}
		return err
	}
	buildStart := time.Now()
	ds := make([]*dfa.DFA, len(bin))
	rules := make([]int, len(bin))
	for i, r := range bin {
		d, err := r.d.get()
		if err != nil {
			return nil, fmt.Errorf("multi: rule %d: %w", r.idx, err)
		}
		ds[i] = d
		rules[i] = r.idx
	}
	dfaBudget := 0
	if capped {
		dfaBudget = o.DFABudget
	}
	d, masks, err := productDFA(ds, dfaBudget)
	if err != nil {
		return nil, markBudgetErr(err)
	}
	words := maskWords(len(bin))
	d, masks = minimizeMasked(d, masks, words)
	sfaCap := o.SFAHardCap
	if capped {
		sfaCap = sfaCapFor(o.SFABudget, d.NumStates)
	}
	s, err := shardDSFA(bin, d, sfaCap, o)
	if err != nil {
		return nil, markBudgetErr(err)
	}
	m := engine.NewMultiSFA(s, masks, words, o.Threads, o.engineOpts()...)
	sh := &shard{m: m, rules: rules}
	storeShard(cacheKey, sh, bin, o)
	elapsed := time.Since(buildStart).Nanoseconds()
	o.rep.note(func(r *BuildReport) {
		r.Built++
		r.ShardBuildNs = append(r.ShardBuildNs, elapsed)
	})
	return sh, nil
}
