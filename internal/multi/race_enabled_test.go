//go:build race

package multi

// raceEnabled gates allocation assertions, which are meaningless under
// the race detector.
const raceEnabled = true
