package multi

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/syntax"
)

// Hot reload without full recompilation. Combined-set construction is the
// expensive step of the pipeline (ROADMAP: tens of seconds for large
// search-bracketed sets), so a serving rule update must not pay it again
// for rules that did not change. A shard's automaton depends only on the
// multiset of (pattern, flags) it covers — not on rule names or global
// indices, which live in the shard's rules[] translation table — so a
// reload can carry a shard over verbatim whenever that multiset survives
// in the new rule list, remapping only the translation table.

// Consolidation margin: an incremental Recompile may leave at most
// consolidateFactor × (last full plan's shard count) + consolidateSlack
// shards before a full replan is forced.
const (
	consolidateFactor = 2
	consolidateSlack  = 4
)

// ReuseStats reports what Recompile carried over versus built.
type ReuseStats struct {
	Reused  int // shards carried over with their automata intact
	Rebuilt int // shards built from scratch for new/changed rules
}

// Recompile builds a Set for nodes like Compile, reusing every shard of
// prev whose rule membership is unchanged. keys[i] is an opaque identity
// string for rule i — equal keys must guarantee identical compiled
// automata (pattern source plus every semantics-affecting flag);
// prevKeys[i] likewise identifies prev's rule i. prev may be nil, which
// degenerates to a full Compile.
//
// Reused shards keep their engine (and its BuildID) by pointer; only
// their local-bit → global-rule-index translation is rewritten. Rules not
// covered by a reusable shard — added rules, edited rules, and former
// shard-mates of removed rules — go through the ordinary plan/build/merge
// pipeline among themselves. Options must match the ones prev was built
// with for the reuse to be sound; ForceShards forces a full rebuild since
// a forced shard count is a property of the whole plan.
func Recompile(nodes []*syntax.Node, keys []string, prev *Set, prevKeys []string, o Options) (*Set, ReuseStats, error) {
	if len(keys) != len(nodes) {
		return nil, ReuseStats{}, fmt.Errorf("multi: %d keys for %d rules", len(keys), len(nodes))
	}
	// The reload keys are the per-rule identity the shard cache is
	// addressed by too, so full rebuilds and fresh-rule builds below can
	// hit disk for shards this process never built.
	o.Keys = keys
	if prev == nil || o.ForceShards > 0 {
		set, err := Compile(nodes, o)
		if err != nil {
			return nil, ReuseStats{}, err
		}
		return set, ReuseStats{Rebuilt: set.NumShards()}, nil
	}
	if len(prevKeys) != prev.rules {
		return nil, ReuseStats{}, fmt.Errorf("multi: %d prev keys for %d prev rules", len(prevKeys), prev.rules)
	}
	o = o.withDefaults()
	if o.rep == nil {
		o.rep = &buildRecorder{}
	}
	start := time.Now()

	// Multiset of new rules per key, consumed front-to-back so duplicate
	// patterns pair up deterministically.
	newByKey := make(map[string][]int, len(keys))
	for i, k := range keys {
		newByKey[k] = append(newByKey[k], i)
	}

	var stats ReuseStats
	taken := make([]bool, len(nodes))
	var shards []*shard
	for _, sh := range prev.shards {
		// Feasibility first: every rule of the shard must still exist,
		// counting multiplicity, before anything is consumed.
		need := make(map[string]int, len(sh.rules))
		ok := true
		for _, r := range sh.rules {
			k := prevKeys[r]
			need[k]++
			if need[k] > len(newByKey[k]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Carry the engine over; local mask bit i keeps meaning "rule i
		// of this shard", only its global index changes.
		rules := make([]int, len(sh.rules))
		for i, r := range sh.rules {
			k := prevKeys[r]
			rules[i] = newByKey[k][0]
			taken[rules[i]] = true
			newByKey[k] = newByKey[k][1:]
		}
		shards = append(shards, &shard{m: sh.m, rules: rules})
		stats.Reused++
	}

	// Everything not claimed by a reused shard goes through the ordinary
	// pipeline, planned and merged among itself only — merging into a
	// reused shard would rebuild exactly what reuse avoided.
	var freshIdx []int
	for i := range nodes {
		if !taken[i] {
			freshIdx = append(freshIdx, i)
		}
	}
	if len(freshIdx) > 0 {
		fresh, err := prepRules(nodes, freshIdx, o)
		if err != nil {
			return nil, ReuseStats{}, err
		}
		prepDone := time.Now()
		o.rep.note(func(r *BuildReport) { r.PrepNs += prepDone.Sub(start).Nanoseconds() })
		builds, err := planAndBuild(fresh, o)
		if err != nil {
			return nil, ReuseStats{}, err
		}
		o.rep.note(func(r *BuildReport) { r.BuildNs += time.Since(prepDone).Nanoseconds() })
		for _, b := range builds {
			shards = append(shards, b.sh)
		}
		stats.Rebuilt = len(builds)
	}
	// Incremental reloads only ever add shards (fresh rules are planned
	// among themselves), so a long-lived set reloaded one rule at a time
	// would accrete one shard per reload — and every scan pays one pass
	// per shard. Bound the drift: once the count outgrows the last full
	// plan by the consolidation margin, pay for one full replan (which
	// re-merges everything and resets the baseline). Amortized, a full
	// rebuild happens at most once per ~doubling of the shard count.
	if len(shards) > consolidateFactor*prev.planShards+consolidateSlack {
		set, err := Compile(nodes, o)
		if err != nil {
			return nil, ReuseStats{}, err
		}
		return set, ReuseStats{Rebuilt: set.NumShards()}, nil
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].rules[0] < shards[j].rules[0] })
	s := newSet(shards, len(nodes), o.Pool)
	s.planShards = prev.planShards
	s.stats = o.Stats
	// Reused engines are membership-keyed, so they are valid regardless
	// of prefilter settings; the prefilter itself is rebuilt from the
	// current extractions (it holds no automata).
	s.armPrefilter(o.Prefilter)
	o.rep.note(func(r *BuildReport) {
		r.Rules = len(nodes)
		r.Shards = len(shards)
		r.ReusedShards = stats.Reused
		r.TotalNs += time.Since(start).Nanoseconds()
	})
	s.report = o.rep.snapshot()
	return s, stats, nil
}
