package multi

import (
	"slices"
	"sync/atomic"

	"repro/internal/prefilter"
)

// Literal prefiltering for combined-set scans. armPrefilter classifies
// every shard by what its rules' extractions allow:
//
//	window — every rule is windowable (covered, unanchored, bounded
//	         match length): the shard's automaton runs only over merged
//	         candidate windows around literal hits;
//	prefix — every rule is begin-anchored with a bounded occurrence:
//	         the shard scans only the first maxLen input bytes (the
//	         trailing .* bracket makes the verdict monotone in prefix
//	         length). Needs no literals at all;
//	gate   — every rule is covered but at least one is neither
//	         windowable nor prefix-bounded (unbounded or end-anchored):
//	         the shard is skipped outright when none of its literals
//	         occur, else scanned in full;
//	full   — some rule has no extractable literal and no prefix bound:
//	         always scanned in full, exactly as without the prefilter.
//
// Soundness rests on the extraction contract (a rule's match always
// contains one of its literals) and the window bound (an occurrence
// containing a length-l hit at position p lies within
// [p+l−MaxLen, p+MaxLen]); completeness of window and prefix modes
// additionally needs search-bracketed automata, whose verdicts are
// monotone under extension — which is why whole-input sets only ever
// gate.

type shardMode uint8

const (
	preFull shardMode = iota
	preGate
	preWindow
	prePrefix
)

// span is a half-open candidate byte range [lo, hi). In streams the
// coordinates are relative to the current chunk's first byte, so lo may
// be negative (reaching into the carried tail buffer) and hi may exceed
// the chunk (a window still waiting for input).
type span struct{ lo, hi int }

// litTarget maps one literal to one shard it can witness a rule of.
// fwd < 0 marks a gate-only target (the shard never windows).
type litTarget struct {
	shard int32
	back  int32 // window lo = pos − back  (back = maxLen − len(lit))
	fwd   int32 // window hi = pos + fwd   (fwd = maxLen)
}

type shardPre struct {
	mode   shardMode
	maxLen int // window/prefix mode: max MaxLen over the shard's rules
}

// setPre is a Set's armed prefilter: the global literal matcher, the
// hit → shard-window mapping, and the observability counters.
type setPre struct {
	m       *prefilter.Matcher
	targets [][]litTarget // by global literal id
	shards  []shardPre
	infos   []prefilter.Rule
	litMax  int // longest literal (stream boundary-carry width)
	maxSpan int // max window-shard span length, 2×maxLen (stream buffers)
	maxPre  int // max prefix-shard scan length (stream head sizing)

	covered   int // rules the cascade accelerates (literal-covered or prefix-bounded)
	uncovered int // rules scanned in full wherever they land

	shardsSkipped atomic.Int64 // shard scans skipped outright
	candBytes     atomic.Int64 // bytes walked by prefiltered shards
	totalBytes    atomic.Int64 // bytes those shards would walk unfiltered
	chunksSkipped atomic.Int64 // stream chunks with no candidate work
	chunksScanned atomic.Int64 // stream chunks with candidate windows
}

// armPrefilter attaches a prefilter built from per-rule extractions
// (index-aligned with the set's rules). A nil or length-mismatched
// infos leaves the set unfiltered — extraction failure is a
// degradation, never an error.
func (s *Set) armPrefilter(infos []prefilter.Rule) {
	if len(infos) != s.rules {
		return
	}
	pre := &setPre{shards: make([]shardPre, len(s.shards)), infos: infos}
	for _, inf := range infos {
		if inf.Covered() || inf.Prefix {
			pre.covered++
		} else {
			pre.uncovered++
		}
	}
	litID := make(map[string]int)
	var lits []string
	for si, sh := range s.shards {
		window, prefix, gate := true, true, true
		maxLen := 0
		for _, ri := range sh.rules {
			inf := infos[ri]
			if !inf.Window {
				window = false
			}
			if !inf.Prefix {
				prefix = false
			}
			if !inf.Covered() {
				gate = false
			}
			if inf.MaxLen > maxLen {
				maxLen = inf.MaxLen
			}
		}
		sp := &pre.shards[si]
		switch {
		case window && len(sh.rules) > 0:
			sp.mode = preWindow
			sp.maxLen = maxLen
			if 2*maxLen > pre.maxSpan {
				pre.maxSpan = 2 * maxLen
			}
		case prefix && len(sh.rules) > 0:
			// Prefix shards never consult the literal matcher: the
			// bounded head scan is cheaper than any gating.
			sp.mode = prePrefix
			sp.maxLen = maxLen
			if maxLen > pre.maxPre {
				pre.maxPre = maxLen
			}
			continue
		case gate:
			sp.mode = preGate
		default:
			continue // preFull, the zero value
		}
		for _, ri := range sh.rules {
			for _, l := range infos[ri].Lits {
				id, ok := litID[l]
				if !ok {
					id = len(lits)
					litID[l] = id
					lits = append(lits, l)
					pre.targets = append(pre.targets, nil)
				}
				pre.addTarget(id, si, sp.mode, infos[ri].MaxLen, len(l))
			}
		}
	}
	if len(lits) == 0 {
		// No shard needs the literal matcher (all full, or prefix-only);
		// keep the stats and the prefix modes, skip the cascade.
		s.pre = pre
		return
	}
	pre.m = prefilter.NewMatcher(lits)
	pre.litMax = pre.m.MaxLen()
	s.pre = pre
}

// addTarget records that literal id witnesses some rule of shard si,
// widening the window extents if a target for the pair already exists.
func (p *setPre) addTarget(id, si int, mode shardMode, maxLen, litLen int) {
	back, fwd := int32(-1), int32(-1)
	if mode == preWindow {
		back, fwd = int32(maxLen-litLen), int32(maxLen)
		if back < 0 {
			// A literal longer than the shrunk occurrence bound: some
			// shorter required literal covers the minimal occurrence, so
			// this hit's window is merely extra — keep it anchored.
			back = 0
		}
	}
	for i := range p.targets[id] {
		t := &p.targets[id][i]
		if int(t.shard) != si {
			continue
		}
		if t.back < back {
			t.back = back
		}
		if t.fwd < fwd {
			t.fwd = fwd
		}
		return
	}
	p.targets[id] = append(p.targets[id], litTarget{shard: int32(si), back: back, fwd: fwd})
}

// active reports whether scans actually consult a matcher.
func (p *setPre) active() bool { return p != nil && p.m != nil }

// prepare runs the literal cascade once over data and distributes the
// hits: per shard a gate flag and (for window shards) a merged,
// clipped candidate-span list, all in the scan context's reusable
// scratch.
func (p *setPre) prepare(c *scanCtx, data []byte) {
	c.hits = p.m.AppendHits(c.hits[:0], data)
	for i := range c.spans {
		c.spans[i] = c.spans[i][:0]
		c.gate[i] = false
	}
	for _, h := range c.hits {
		for _, t := range p.targets[h.Lit] {
			c.gate[t.shard] = true
			if t.fwd >= 0 {
				c.spans[t.shard] = append(c.spans[t.shard],
					span{h.Pos - int(t.back), h.Pos + int(t.fwd)})
			}
		}
	}
	for i := range c.spans {
		c.spans[i] = mergeSpans(c.spans[i], 0, len(data))
	}
}

// mergeSpans clips spans to [lo, hi), sorts them, and merges overlaps
// in place.
func mergeSpans(spans []span, lo, hi int) []span {
	if len(spans) == 0 {
		return spans
	}
	for i := range spans {
		if spans[i].lo < lo {
			spans[i].lo = lo
		}
		if spans[i].hi > hi {
			spans[i].hi = hi
		}
	}
	slices.SortFunc(spans, func(a, b span) int { return a.lo - b.lo })
	out := spans[:1]
	for _, sp := range spans[1:] {
		if last := &out[len(out)-1]; sp.lo <= last.hi {
			if sp.hi > last.hi {
				last.hi = sp.hi
			}
		} else {
			out = append(out, sp)
		}
	}
	return out
}

// scanShard produces shard i's local mask for data into c.bufs[i],
// routing through the shard's prefilter mode. Verdicts are byte-
// identical to an unfiltered MatchMask in every mode.
func (s *Set) scanShard(i int, data []byte, c *scanCtx) []uint64 {
	sh := s.shards[i]
	buf := c.bufs[i]
	p := s.pre
	if p == nil || p.shards[i].mode == preFull {
		return sh.m.MatchMask(data, buf)
	}
	if p.shards[i].mode == prePrefix {
		// Begin-anchored shard: the verdict is decided by the first
		// maxLen bytes (occurrences start at byte 0 and the trailing .*
		// bracket absorbs the rest).
		p.totalBytes.Add(int64(len(data)))
		k := p.shards[i].maxLen
		if k > len(data) {
			k = len(data)
		}
		p.candBytes.Add(int64(k))
		return sh.m.MatchMask(data[:k], buf)
	}
	if !p.active() {
		return sh.m.MatchMask(data, buf)
	}
	p.totalBytes.Add(int64(len(data)))
	if !c.gate[i] {
		p.shardsSkipped.Add(1)
		for j := range buf {
			buf[j] = 0
		}
		return buf
	}
	if p.shards[i].mode == preGate {
		p.candBytes.Add(int64(len(data)))
		return sh.m.MatchMask(data, buf)
	}
	spans := c.spans[i]
	total := 0
	for _, sp := range spans {
		total += sp.hi - sp.lo
	}
	// Dense windows: once the candidate regions approach the input
	// itself, per-window dispatch is pure overhead — scan it whole.
	if 2*total >= len(data) {
		p.candBytes.Add(int64(len(data)))
		return sh.m.MatchMask(data, buf)
	}
	p.candBytes.Add(int64(total))
	for j := range buf {
		buf[j] = 0
	}
	for _, sp := range spans {
		sh.m.OrMask(data[sp.lo:sp.hi], buf)
	}
	return buf
}

// PrefilterStats is a point-in-time snapshot of the literal cascade's
// configuration and effect.
type PrefilterStats struct {
	Enabled  bool   // a prefilter is armed on this set
	Stage    string // cascade stage of the global literal matcher
	Literals int    // distinct literals matched

	RulesCovered   int // rules the cascade accelerates (literals or prefix bound)
	RulesUncovered int // rules that always scan in full

	WindowShards int
	PrefixShards int
	GateShards   int
	FullShards   int

	ShardsSkipped  int64 // one-shot shard scans skipped outright
	CandidateBytes int64 // bytes walked by prefiltered shards
	TotalBytes     int64 // bytes they would have walked unfiltered
	ChunksSkipped  int64 // stream shard-chunks with no candidate work
	ChunksScanned  int64 // stream shard-chunks with candidate windows

	MatcherCalls int64 // global literal matcher invocations
	MatcherBytes int64 // input bytes swept by the matcher
	MatcherHits  int64 // literal occurrences it surfaced
}

// PrefilterStats reports the armed prefilter's static shape and its
// dynamic counters since the set was built. The zero value means the
// set was compiled without a prefilter.
func (s *Set) PrefilterStats() PrefilterStats {
	p := s.pre
	if p == nil {
		return PrefilterStats{}
	}
	st := PrefilterStats{
		Enabled:        true,
		RulesCovered:   p.covered,
		RulesUncovered: p.uncovered,
		ShardsSkipped:  p.shardsSkipped.Load(),
		CandidateBytes: p.candBytes.Load(),
		TotalBytes:     p.totalBytes.Load(),
		ChunksSkipped:  p.chunksSkipped.Load(),
		ChunksScanned:  p.chunksScanned.Load(),
	}
	if p.m != nil {
		ms := p.m.Stats()
		st.Stage = ms.Stage
		st.Literals = len(p.m.Lits())
		st.MatcherCalls = ms.Calls
		st.MatcherBytes = ms.Bytes
		st.MatcherHits = ms.Hits
	}
	for _, sp := range p.shards {
		switch sp.mode {
		case preWindow:
			st.WindowShards++
		case prePrefix:
			st.PrefixShards++
		case preGate:
			st.GateShards++
		default:
			st.FullShards++
		}
	}
	return st
}
