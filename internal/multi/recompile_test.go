package multi

import (
	"fmt"
	"testing"
)

// keysFor gives each pattern its own identity key (the sfa layer derives
// these from pattern + flags; here the pattern string suffices).
func keysFor(patterns []string) []string {
	keys := make([]string, len(patterns))
	copy(keys, patterns)
	return keys
}

// buildIDs returns the per-shard construction ids keyed by the sorted
// rule-index list, so reuse can be asserted across index remapping.
func buildIDs(s *Set) map[string]uint64 {
	out := make(map[string]uint64, s.NumShards())
	for _, info := range s.Shards() {
		out[fmt.Sprint(info.Rules)] = info.BuildID
	}
	return out
}

func TestRecompileNoChangeReusesEverything(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	keys := keysFor(testPatterns)
	prev, err := Compile(nodes, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := Recompile(nodes, keys, prev, keys, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebuilt != 0 || stats.Reused != prev.NumShards() {
		t.Fatalf("identical reload: stats %+v, want %d reused / 0 rebuilt", stats, prev.NumShards())
	}
	if got, want := buildIDs(next), buildIDs(prev); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("identical reload changed shard build ids: %v vs %v", got, want)
	}
	checkAgainstOracle(t, next, oracleDFAs(t, testPatterns), testInputs())
}

func TestRecompileAddRemoveEdit(t *testing.T) {
	base := testPatterns
	nodes := parseAll(t, base)
	keys := keysFor(base)
	// Small budget so the set splits into several shards and reuse is
	// observable per shard.
	o := Options{Threads: 1, SFABudget: 64}
	prev, err := Compile(nodes, o)
	if err != nil {
		t.Fatal(err)
	}
	if prev.NumShards() < 2 {
		t.Fatalf("fixture degenerated to %d shard(s)", prev.NumShards())
	}
	prevIDs := map[uint64]bool{}
	for _, info := range prev.Shards() {
		prevIDs[info.BuildID] = true
	}

	// One rule edited, one removed, one added; the rest must keep their
	// automata whenever their shard membership survives.
	edited := append([]string(nil), base...)
	edited[1] = `a[ab]*ba`              // edit
	edited = edited[:len(edited)-1]     // remove x*y*z*
	edited = append(edited, `(cd|dc)+`) // add
	newNodes := parseAll(t, edited)
	newKeys := keysFor(edited)

	next, stats, err := Recompile(newNodes, newKeys, prev, keys, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused == 0 {
		t.Fatalf("no shard reused across an incremental reload: %+v", stats)
	}
	if stats.Rebuilt == 0 {
		t.Fatalf("edited rules produced no rebuilt shard: %+v", stats)
	}
	reused, rebuilt := 0, 0
	for _, info := range next.Shards() {
		if prevIDs[info.BuildID] {
			reused++
		} else {
			rebuilt++
		}
	}
	if reused != stats.Reused || rebuilt != stats.Rebuilt {
		t.Fatalf("build ids say %d reused / %d rebuilt, stats say %+v", reused, rebuilt, stats)
	}
	checkAgainstOracle(t, next, oracleDFAs(t, edited), testInputs())
}

func TestRecompileFromNilIsFullCompile(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	keys := keysFor(testPatterns)
	set, stats, err := Recompile(nodes, keys, nil, nil, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != 0 || stats.Rebuilt != set.NumShards() {
		t.Fatalf("nil prev: stats %+v", stats)
	}
	checkAgainstOracle(t, set, oracleDFAs(t, testPatterns), testInputs())
}

func TestRecompileDuplicatePatterns(t *testing.T) {
	// Two rules sharing one pattern: keys collide, multiplicity must be
	// respected — each prev instance claims exactly one new instance.
	patterns := []string{`(ab)*`, `(ab)*`, `a+`}
	nodes := parseAll(t, patterns)
	keys := keysFor(patterns)
	prev, err := Compile(nodes, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drop one duplicate: the surviving instance must still pair up.
	shrunk := []string{`(ab)*`, `a+`}
	next, _, err := Recompile(parseAll(t, shrunk), keysFor(shrunk), prev, keys, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, next, oracleDFAs(t, shrunk), testInputs())
}

func TestRecompileForceShardsRebuildsAll(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	keys := keysFor(testPatterns)
	prev, err := Compile(nodes, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := Recompile(nodes, keys, prev, keys, Options{Threads: 1, ForceShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != 0 {
		t.Fatalf("forced shard count must rebuild the whole plan: %+v", stats)
	}
	checkAgainstOracle(t, next, oracleDFAs(t, testPatterns), testInputs())
}

// TestSetStreamAgreesWithScan: the streamed mask after any chunking must
// equal the one-shot Scan mask, for single- and multi-shard sets.
func TestSetStreamAgreesWithScan(t *testing.T) {
	for _, forced := range []int{0, 3} {
		s, err := Compile(parseAll(t, testPatterns), Options{Threads: 2, ForceShards: forced})
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]uint64, s.Words())
		got := make([]uint64, s.Words())
		for _, in := range testInputs() {
			want := append([]uint64(nil), s.Scan(in, 0, dst)...)
			for _, split := range []int{1, 2, 5} {
				st := s.NewStream()
				for off := 0; off < len(in); off += split {
					end := min(off+split, len(in))
					st.Write(in[off:end])
				}
				if mask := st.Mask(got); fmt.Sprint(mask) != fmt.Sprint(want) {
					t.Fatalf("shards=%d input %q split=%d: streamed %v, one-shot %v",
						s.NumShards(), in, split, mask, want)
				}
				if st.Bytes() != int64(len(in)) {
					t.Fatalf("Bytes = %d, want %d", st.Bytes(), len(in))
				}
			}
		}
	}
}

func TestSetStreamComposeAndReset(t *testing.T) {
	s, err := Compile(parseAll(t, testPatterns), Options{Threads: 1, ForceShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("abababab")
	want := fmt.Sprint(s.Scan(in, 0, make([]uint64, s.Words())))

	a, b := s.NewStream(), s.NewStream()
	b.Write(in[3:]) // segments scanned out of order
	a.Write(in[:3])
	if err := a.Compose(b); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(a.Mask(make([]uint64, s.Words()))); got != want {
		t.Fatalf("composed mask %s, want %s", got, want)
	}
	if a.Bytes() != int64(len(in)) {
		t.Fatalf("composed Bytes = %d", a.Bytes())
	}

	a.Reset()
	if a.Bytes() != 0 {
		t.Fatal("Reset did not rewind byte count")
	}
	empty := fmt.Sprint(s.Scan(nil, 0, make([]uint64, s.Words())))
	if got := fmt.Sprint(a.Mask(make([]uint64, s.Words()))); got != empty {
		t.Fatalf("reset stream mask %s, want empty-input mask %s", got, empty)
	}

	other, err := Compile(parseAll(t, testPatterns), Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Compose(other.NewStream()); err == nil {
		t.Fatal("cross-set compose should fail")
	}
}

// TestScanSequentialZeroAlloc guards the workers=1 form RuleSet.MatchMask
// rides: multi-shard sets must scan with no per-call heap allocation.
func TestScanSequentialZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	s, err := Compile(parseAll(t, testPatterns), Options{Threads: 2, ForceShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() < 2 {
		t.Fatalf("fixture degenerated to %d shard(s)", s.NumShards())
	}
	data := []byte("abababab0156xyzz")
	dst := make([]uint64, s.Words())
	for i := 0; i < 10; i++ {
		s.Scan(data, 1, dst)
	}
	if avg := testing.AllocsPerRun(100, func() { s.Scan(data, 1, dst) }); avg >= 0.5 {
		t.Errorf("sequential Scan allocates %.2f allocs/op", avg)
	}
}

// TestRecompileConsolidatesShardDrift: reloading one added rule at a
// time must not accrete one shard per reload forever — once the count
// outgrows the last full plan's by the consolidation margin, Recompile
// pays for a full replan and the shard count collapses back.
func TestRecompileConsolidatesShardDrift(t *testing.T) {
	patterns := []string{`(ab)*`}
	o := Options{Threads: 1}
	set, err := Compile(parseAll(t, patterns), o)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumShards() != 1 {
		t.Fatalf("base fixture: %d shards", set.NumShards())
	}
	consolidated := false
	maxSeen := 0
	for i := 0; i < 12; i++ {
		patterns = append(patterns, fmt.Sprintf(`x{%d}y`, i+1))
		nodes := parseAll(t, patterns)
		next, stats, err := Recompile(nodes, keysFor(patterns), set, keysFor(patterns[:len(patterns)-1]), o)
		if err != nil {
			t.Fatal(err)
		}
		if n := next.NumShards(); n > maxSeen {
			maxSeen = n
		}
		if stats.Reused == 0 && set.NumShards() > 1 {
			consolidated = true
		}
		set = next
	}
	// Margin for a 1-shard full plan: 2·1+4 = 6.
	if maxSeen > 2*1+4+1 {
		t.Fatalf("shard drift unbounded: reached %d shards", maxSeen)
	}
	if !consolidated {
		t.Fatal("12 single-rule reloads never triggered a consolidation replan")
	}
	checkAgainstOracle(t, set, oracleDFAs(t, patterns), testInputs())
}
