package multi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
)

// Lazy shard mode: the planner's answer to rules whose combined D-SFA
// the eager builder cannot afford. A rule whose estimation dry run
// overran the shard budget (fits == false) used to force a dedicated
// shard built *uncapped* — the isolated-equivalent fallback — which
// still fails outright when the rule's own D-SFA exceeds the hard
// construction limits. Under Options.Lazy such rules are routed to lazy
// shards instead: an engine.LazyMultiSFA over a core.LazyTuple, which
// materializes only the product states the traffic reaches and keeps
// them under the table budget. Rules that fit stay on the eager path —
// the sticky fallback — so enabling Lazy never changes how a set that
// compiled yesterday is built today.

// Limits of one lazy shard. The carried mapping is Σ|Di| long and every
// resident tuple state costs O(k) to step on a miss, so both the rule
// count and the summed component-DFA size are bounded per shard;
// overflow opens another lazy shard (they scan concurrently like any
// other shards).
const (
	maxLazyShardRules     = 32
	maxLazyShardDFAStates = 8192
)

// shardEngine is the scan-and-stream surface a shard's matcher provides.
// engine.MultiSFA (eager, table-backed) and engine.LazyMultiSFA (lazy,
// budgeted) implement it; everything in this package except the codec
// and the merge pass — which need eager tables — works against the
// interface.
type shardEngine interface {
	Match(text []byte) bool
	MatchMask(text []byte, dst []uint64) []uint64
	OrMask(text []byte, dst []uint64)
	Words() int

	MappingLen() int
	InitMapping(cur []int16)
	ComposeChunk(cur, tmp []int16, chunk []byte) ([]int16, []int16)
	MatchMaskFrom(cur []int16, dst []uint64) []uint64
	ComposeMask(h, f, g []int16)

	BuildID() uint64
	TableBytes() int64
	Info() engine.Info
}

// eagerEngine unwraps a shard's engine when it is the serializable,
// mergeable eager kind; nil for lazy shards.
func eagerEngine(m shardEngine) *engine.MultiSFA {
	e, _ := m.(*engine.MultiSFA)
	return e
}

// planLazy splits the prepared rules into the eager population and the
// lazily-built remainder: a rule goes lazy exactly when its estimation
// dry run said no capped per-rule build fits the shard budget — the
// population the eager planner would isolate and build uncapped (or
// reject). Order is preserved within both halves.
func planLazy(rules []planRule, o Options) (eager, lazy []planRule) {
	if !o.Lazy {
		return rules, nil
	}
	for _, r := range rules {
		if r.fits {
			eager = append(eager, r)
		} else {
			lazy = append(lazy, r)
		}
	}
	return eager, lazy
}

// buildLazyShards bins the lazy rules (first-fit in index order under
// the per-shard limits) and wraps each bin in a lazy engine. The
// resulting shardBuilds are frozen: the merge pass measures eager table
// sizes, which lazy shards do not have.
func buildLazyShards(rules []planRule, o Options) ([]*shardBuild, error) {
	var bins [][]planRule
	var binStates []int
	for _, r := range rules {
		placed := false
		for b := range bins {
			if len(bins[b]) < maxLazyShardRules && binStates[b]+r.states <= maxLazyShardDFAStates {
				bins[b] = append(bins[b], r)
				binStates[b] += r.states
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, []planRule{r})
			binStates = append(binStates, r.states)
		}
	}
	builds := make([]*shardBuild, 0, len(bins))
	for _, bin := range bins {
		sh, err := buildLazyShard(bin, o)
		if err != nil {
			return nil, err
		}
		builds = append(builds, &shardBuild{bin: bin, sh: sh, frozen: true})
	}
	return builds, nil
}

// buildLazyShard wraps one bin of rules in a lazy combined engine. Only
// the component DFAs are constructed — no product, no D-SFA dry run, no
// tables — so "building" a lazy shard is cheap no matter how large its
// automata would be.
func buildLazyShard(bin []planRule, o Options) (*shard, error) {
	dfas := make([]*dfa.DFA, len(bin))
	rules := make([]int, len(bin))
	for i, r := range bin {
		d, err := r.d.get()
		if err != nil {
			return nil, fmt.Errorf("multi: rule %d: %w", r.idx, err)
		}
		dfas[i] = d
		rules[i] = r.idx
	}
	lt, err := core.NewLazyTuple(dfas, core.LazyTupleOptions{Budget: o.budget()})
	if err != nil {
		return nil, fmt.Errorf("multi: lazy shard: %w", err)
	}
	m := engine.NewLazyMultiSFA(lt, o.Threads, o.engineOpts()...)
	return &shard{m: m, rules: rules}, nil
}
