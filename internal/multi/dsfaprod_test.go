package multi

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/regen"
	"repro/internal/syntax"
)

// The tuple-interned construction's correctness contract: byte-identical
// MatchMask and streaming verdicts versus the vector-interned path, for
// every shard topology. State counts are deliberately NOT compared —
// tuple identity over-approximates vector identity, so the tuple
// automaton may be larger; only verdicts are gated.

// buildBoth compiles the same nodes through both construction paths.
func buildBoth(t *testing.T, nodes []*syntax.Node, o Options) (tuple, vector *Set) {
	t.Helper()
	o.VectorIntern = false
	tu, err := Compile(nodes, o)
	if err != nil {
		t.Fatalf("tuple compile: %v", err)
	}
	o.VectorIntern = true
	ve, err := Compile(nodes, o)
	if err != nil {
		t.Fatalf("vector compile: %v", err)
	}
	return tu, ve
}

// checkMaskAgreement scans every input through both sets and demands
// word-identical global masks, plus chunked-stream agreement with the
// one-shot verdict on both.
func checkMaskAgreement(t *testing.T, tuple, vector *Set, inputs [][]byte, r *rand.Rand) {
	t.Helper()
	dt := make([]uint64, tuple.Words())
	dv := make([]uint64, vector.Words())
	st, sv := tuple.NewStream(), vector.NewStream()
	mt := make([]uint64, tuple.Words())
	mv := make([]uint64, vector.Words())
	for _, in := range inputs {
		gt := tuple.Scan(in, 0, dt)
		gv := vector.Scan(in, 0, dv)
		for w := range gt {
			if gt[w] != gv[w] {
				t.Fatalf("input %q: tuple mask %x != vector mask %x (shards %d vs %d)",
					in, gt, gv, tuple.NumShards(), vector.NumShards())
			}
		}
		// Streaming: the same input in random chunks must reproduce the
		// one-shot mask on both paths.
		st.Reset()
		sv.Reset()
		for lo := 0; lo < len(in); {
			hi := lo + 1 + r.Intn(len(in)-lo)
			st.Write(in[lo:hi])
			sv.Write(in[lo:hi])
			lo = hi
		}
		smt, smv := st.Mask(mt), sv.Mask(mv)
		for w := range gt {
			if smt[w] != gt[w] || smv[w] != gv[w] {
				t.Fatalf("input %q: stream masks %x/%x != one-shot %x", in, smt, smv, gt)
			}
		}
	}
}

// TestTupleVsVectorOracle is the randomized construction oracle:
// generated rule sets × {combined, forced shards, isolated-per-rule} ×
// {whole-input, search-bracketed}, all asserting byte-identical verdicts
// between the two interning strategies. The merge pass runs on the
// force=0 builds whenever the plan over-shards, so merged shards are
// covered by the same assertions.
func TestTupleVsVectorOracle(t *testing.T) {
	gen := regen.New(regen.Config{Alphabet: "abc", AllowClasses: true, AllowCounts: true}, 41)
	r := rand.New(rand.NewSource(42))
	alpha := []byte("abcx")
	for round := 0; round < 4; round++ {
		nrules := 3 + r.Intn(5)
		patterns := make([]string, nrules)
		for i := range patterns {
			patterns[i] = gen.Pattern()
		}
		inputs := [][]byte{nil, []byte("a"), []byte("abcabc")}
		for i := 0; i < 40; i++ {
			in := make([]byte, r.Intn(40))
			for j := range in {
				in[j] = alpha[r.Intn(len(alpha))]
			}
			inputs = append(inputs, in)
		}
		for _, search := range []bool{false, true} {
			nodes := make([]*syntax.Node, nrules)
			for i, p := range patterns {
				nodes[i] = syntax.MustParse(p, 0)
				if search {
					nodes[i] = syntax.BracketForSearch(nodes[i])
				}
			}
			for _, force := range []int{0, 2, nrules} {
				tuple, vector := buildBoth(t, nodes, Options{ForceShards: force, Threads: 1})
				checkMaskAgreement(t, tuple, vector, inputs, r)
			}
		}
	}
}

// TestTupleTinyBudgetSplits drives both paths through the blow-up
// split-and-retry loop with a tiny budget and demands agreement — the
// budget errors the tuple path returns must be exactly what the split
// loop expects, or one side would fail outright.
func TestTupleTinyBudgetSplits(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	ds := oracleDFAs(t, testPatterns)
	tuple, vector := buildBoth(t, nodes, Options{SFABudget: 12, Threads: 1})
	if tuple.NumShards() < 2 {
		t.Fatalf("budget 12 produced %d tuple shards; expected a split", tuple.NumShards())
	}
	inputs := testInputs()
	checkMaskAgreement(t, tuple, vector, inputs, rand.New(rand.NewSource(3)))
	checkAgainstOracle(t, tuple, ds, inputs)
}

// TestTupleDSFABudgetError calls the tuple walker directly and checks an
// overrun reports the same sentinel the planner's isBudgetErr reacts to.
func TestTupleDSFABudgetError(t *testing.T) {
	ds := oracleDFAs(t, testPatterns[:4])
	comps := make([]*core.DSFA, len(ds))
	for i, d := range ds {
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		comps[i] = s
	}
	d, masks, err := productDFA(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, _ = minimizeMasked(d, masks, maskWords(len(ds)))
	full, err := tupleDSFA(comps, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tupleDSFA(comps, d, full.NumStates-1)
	if err == nil || !isBudgetErr(err) {
		t.Fatalf("cap %d: want a budget error, got %v", full.NumStates-1, err)
	}
	// The uncapped tuple automaton must accept exactly like the DFA it
	// wraps (Theorem 2 through the tuple correspondence).
	for _, in := range testInputs() {
		if full.Accepts(in) != d.Accepts(in) {
			t.Fatalf("input %q: tuple D-SFA disagrees with product DFA", in)
		}
	}
	// Tuple identity over-approximates vector identity: never fewer
	// states than the vector-interned automaton over the same DFA.
	vec, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumStates < vec.NumStates {
		t.Fatalf("tuple automaton has %d states, vector has %d — tuple interning must be an upper bound",
			full.NumStates, vec.NumStates)
	}
}

// TestEstimateSFASurfacesNonBudgetErrors: a component DFA past the
// int16 construction limit can never build at ANY budget — estimateSFA
// must report the real error, not disguise it as a budget overrun that
// the split path would pointlessly retry.
func TestEstimateSFASurfacesNonBudgetErrors(t *testing.T) {
	bc := oracleDFAs(t, []string{"a"})[0].BC
	huge := dfa.New(core.MaxDFAStates+1, bc)
	_, _, err := estimateSFA(huge, 100)
	if err == nil {
		t.Fatal("want an error for a DFA past MaxDFAStates, got est=budget+1")
	}
	if isBudgetErr(err) {
		t.Fatalf("non-budget failure reported as budget overrun: %v", err)
	}
	// A genuine overrun still reports budget+1 with no error.
	d := oracleDFAs(t, []string{`(ab)*`})[0]
	est, s, err := estimateSFA(d, 1)
	if err != nil || s != nil || est != 2 {
		t.Fatalf("genuine overrun: est=%d s=%v err=%v, want 2/nil/nil", est, s, err)
	}
}

// TestShardCacheBudgetIsolation is the regression test for budget-blind
// cache entries: a shard built and stored under a large SFABudget must
// NOT be served into a build configured with a smaller one — the small
// build must miss, fail its capped attempt, and split.
func TestShardCacheBudgetIsolation(t *testing.T) {
	patterns := testPatterns
	nodes := parseAll(t, patterns)
	keys := make([]string, len(patterns))
	for i, p := range patterns {
		keys[i] = "k\x00" + p
	}
	cache := newMemCache()

	big := Options{Threads: 1, ForceShards: 1, Keys: keys, Cache: cache}
	sBig, err := Compile(nodes, big)
	if err != nil {
		t.Fatal(err)
	}
	if sBig.NumShards() != 1 {
		t.Fatalf("big-budget forced build produced %d shards, want 1", sBig.NumShards())
	}
	combined := sBig.Shards()[0].SFAStates

	// Derive a budget every rule fits alone but the combined shard does
	// not, so the small-budget plan attempts (and must reject) the exact
	// membership the cache holds.
	maxSingle := 0
	for _, d := range oracleDFAs(t, patterns) {
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumStates > maxSingle {
			maxSingle = s.NumStates
		}
	}
	small := combined - 1
	if maxSingle > small {
		t.Fatalf("fixture broke: max single-rule D-SFA %d ≥ combined-1 %d", maxSingle, small)
	}

	o := Options{Threads: 1, ForceShards: 1, Keys: keys, Cache: cache, SFABudget: small}
	sSmall, err := Compile(nodes, o)
	if err != nil {
		t.Fatal(err)
	}
	if sSmall.NumShards() < 2 {
		t.Fatalf("small-budget build adopted the big-budget cached shard: %d shard(s) for budget %d (combined needs %d)",
			sSmall.NumShards(), small, combined)
	}
	for _, info := range sSmall.Shards() {
		if len(info.Rules) > 1 && info.SFAStates > small {
			t.Fatalf("multi-rule shard %v has %d states under budget %d", info.Rules, info.SFAStates, small)
		}
	}
	checkAgainstOracle(t, sSmall, oracleDFAs(t, patterns), testInputs())

	// And directly: the cache address must depend on both budgets and
	// the interning mode (a VectorIntern A/B run must not silently adopt
	// tuple-built blobs).
	ks := []string{
		shardCacheKey("m", Options{DFABudget: 1000, SFABudget: 100}),
		shardCacheKey("m", Options{DFABudget: 1000, SFABudget: 200}),
		shardCacheKey("m", Options{DFABudget: 2000, SFABudget: 100}),
		shardCacheKey("m", Options{DFABudget: 1000, SFABudget: 100, VectorIntern: true}),
	}
	for i := range ks {
		for j := i + 1; j < len(ks); j++ {
			if ks[i] == ks[j] {
				t.Fatalf("shardCacheKey collision between option sets %d and %d: %s", i, j, ks[i])
			}
		}
	}
}

// TestTupleWarmCacheRoundTrip: a tuple-built shard stored in the cache
// decodes and serves on a second build — the codec path is construction-
// strategy-agnostic.
func TestTupleWarmCacheRoundTrip(t *testing.T) {
	nodes := parseAll(t, testPatterns)
	keys := make([]string, len(testPatterns))
	for i, p := range testPatterns {
		keys[i] = "k\x00" + p
	}
	cache := newMemCache()
	o := Options{Threads: 1, Keys: keys, Cache: cache}
	if _, err := Compile(nodes, o); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	stored := len(cache.blobs)
	cache.mu.Unlock()
	if stored == 0 {
		t.Fatal("no cache entries stored")
	}
	warm, err := Compile(nodes, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range warm.Shards() {
		if info.BuildID&(1<<63) == 0 {
			t.Fatalf("warm shard %v not decoded from cache (BuildID %x)", info.Rules, info.BuildID)
		}
	}
	checkAgainstOracle(t, warm, oracleDFAs(t, testPatterns), testInputs())
}
