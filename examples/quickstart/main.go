// Quickstart: compile the paper's r5 benchmark pattern, inspect the
// automata the pipeline builds, and match a large input in parallel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/sfa"
)

func main() {
	// r5 = ([0-4]{5}[5-9]{5})*: the pattern of the paper's Fig. 6.
	re, err := sfa.Compile("([0-4]{5}[5-9]{5})*")
	if err != nil {
		log.Fatal(err)
	}

	sizes := re.Sizes()
	fmt.Printf("pattern      %s\n", re)
	fmt.Printf("engine       %s\n", re.EngineName())
	fmt.Printf("NFA states   %d (Glushkov)\n", sizes.NFAStates)
	fmt.Printf("DFA states   %d live (paper: 10)\n", sizes.DFALive)
	fmt.Printf("SFA states   %d live (paper: 109)\n", sizes.SFALive)
	fmt.Printf("byte classes %d\n\n", sizes.Classes)

	// Small checks.
	for _, probe := range []string{"", "0123456789", "0123456789012", "5012345678"} {
		fmt.Printf("Match(%-15q) = %v\n", probe, re.MatchString(probe))
	}

	// A 64 MiB accepted input, matched in parallel: the input is split at
	// arbitrary byte positions (Theorem 3), each chunk runs on its own
	// goroutine with one table lookup per byte, and the chunk results are
	// folded in O(p).
	text := []byte(strings.Repeat("0123455678", 64<<20/10))
	start := time.Now()
	ok := re.Match(text)
	elapsed := time.Since(start)
	fmt.Printf("\nparallel match of %d MiB: %v in %v (%.2f GB/s)\n",
		len(text)>>20, ok, elapsed, float64(len(text))/elapsed.Seconds()/1e9)

	// The same input through the sequential DFA baseline (Algorithm 2).
	seq, err := sfa.Compile("([0-4]{5}[5-9]{5})*", sfa.WithEngine(sfa.EngineDFA))
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	seq.Match(text)
	fmt.Printf("sequential DFA baseline:       %v (%.2f GB/s)\n",
		time.Since(start), float64(len(text))/time.Since(start).Seconds()/1e9)
}
