// IDS scan: the workload that motivates the paper — SNORT-style deep
// packet inspection. A set of detection rules is compiled once; a stream
// of synthetic HTTP traffic is scanned line by line with substring
// semantics, and flagged lines are reported with per-rule hit counts.
//
//	go run ./examples/idsscan
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/textgen"
	"repro/sfa"
)

// rules is a hand-picked slice of realistic SNORT-shaped patterns (see
// internal/snort for the full corpus used by the Fig. 3 study).
var rules = []struct {
	name    string
	pattern string
	flags   sfa.Flag
}{
	{"sql-union", `(select|union).{1,64}(select|union)`, sfa.FoldCase | sfa.DotAll},
	{"dir-traversal", `/\.\./\.\./`, 0},
	{"cmd-exe", `cmd\.exe`, sfa.FoldCase},
	{"nop-sled", `\x90{8,}`, 0},
	{"xp-cmdshell", `xp_cmdshell`, sfa.FoldCase},
	{"script-inject", `<script[^>]{0,64}>`, sfa.FoldCase},
	{"sqli-quote", `('|%27) ?or ?('|%27)?1('|%27)?=('|%27)?1`, sfa.FoldCase},
	{"cgi-shell", `/cgi-bin/[a-z]{1,12}\.cgi`, 0},
}

func main() {
	// Compile every rule for substring search.
	type compiled struct {
		name string
		re   *sfa.Regexp
		hits int
	}
	var cs []compiled
	for _, r := range rules {
		// Lines are tiny, so intra-line parallelism would only pay the
		// goroutine fork; one thread per rule, lines processed in bulk.
		re, err := sfa.Compile(r.pattern, sfa.WithSearch(), sfa.WithFlags(r.flags), sfa.WithThreads(1))
		if err != nil {
			log.Fatalf("rule %s: %v", r.name, err)
		}
		s := re.Sizes()
		fmt.Printf("compiled %-14s |D|=%-4d |Sd|=%-6d\n", r.name, s.DFALive, s.SFALive)
		cs = append(cs, compiled{name: r.name, re: re})
	}

	// 16 MiB of synthetic traffic with ~2‰ attack lines planted.
	data, planted := textgen.Traffic{SuspiciousPerMille: 2}.Generate(16<<20, 42)
	lines := textgen.Lines(data)
	fmt.Printf("\nscanning %d MiB, %d lines (%d suspicious planted)\n",
		len(data)>>20, len(lines), planted)

	start := time.Now()
	flagged := 0
	for _, line := range lines {
		hit := false
		for i := range cs {
			if cs[i].re.Match(line) {
				cs[i].hits++
				hit = true
			}
		}
		if hit {
			flagged++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("flagged %d lines in %v (%.2f GB/s aggregate)\n\n",
		flagged, elapsed, float64(len(data))*float64(len(cs))/elapsed.Seconds()/1e9)
	for _, c := range cs {
		fmt.Printf("%-14s %6d hits\n", c.name, c.hits)
	}
}
