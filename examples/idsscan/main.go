// IDS scan: the workload that motivates the paper — SNORT-style deep
// packet inspection. A set of detection rules is compiled once into a
// combined multi-pattern D-SFA (sharded if the product automaton would
// blow its state budget); a stream of synthetic HTTP traffic is scanned
// line by line with substring semantics, and flagged lines are reported
// with per-rule hit counts. The same scan then runs on the isolated
// per-rule engines — one full pass per rule per line, the architecture
// the combined automaton replaces — for comparison.
//
//	go run ./examples/idsscan
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/textgen"
	"repro/sfa"
)

// rules is a hand-picked slice of realistic SNORT-shaped patterns (see
// internal/snort for the full corpus used by the Fig. 3 study).
var rules = []sfa.RuleDef{
	{Name: "sql-union", Pattern: `(select|union).{1,64}(select|union)`, Flags: sfa.FoldCase | sfa.DotAll},
	{Name: "dir-traversal", Pattern: `/\.\./\.\./`},
	{Name: "cmd-exe", Pattern: `cmd\.exe`, Flags: sfa.FoldCase},
	{Name: "nop-sled", Pattern: `\x90{8,}`},
	{Name: "xp-cmdshell", Pattern: `xp_cmdshell`, Flags: sfa.FoldCase},
	{Name: "script-inject", Pattern: `<script[^>]{0,64}>`, Flags: sfa.FoldCase},
	{Name: "sqli-quote", Pattern: `('|%27) ?or ?('|%27)?1('|%27)?=('|%27)?1`, Flags: sfa.FoldCase},
	{Name: "cgi-shell", Pattern: `/cgi-bin/[a-z]{1,12}\.cgi`},
}

func main() {
	// Lines are tiny, so intra-line parallelism would only pay the
	// goroutine fork; one thread per pass, lines processed in bulk.
	opts := []sfa.Option{sfa.WithSearch(), sfa.WithThreads(1)}

	start := time.Now()
	combined, err := sfa.NewRuleSetFromDefs(rules, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined: %d rules → %d shard(s) in %v\n",
		combined.Len(), combined.NumShards(), time.Since(start).Round(time.Millisecond))
	for i, sh := range combined.Shards() {
		fmt.Printf("  shard %d: |D|=%-5d |Sd|=%-6d table %4d KiB  rules %v\n",
			i, sh.DFAStates, sh.SFAStates, sh.TableBytes>>10, sh.Rules)
	}

	start = time.Now()
	isolated, err := sfa.NewRuleSetFromDefs(rules, append(opts, sfa.WithIsolatedRules())...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolated: %d independent engines in %v\n",
		isolated.Len(), time.Since(start).Round(time.Millisecond))

	// 16 MiB of synthetic traffic with ~2‰ attack lines planted.
	data, planted := textgen.Traffic{SuspiciousPerMille: 2}.Generate(16<<20, 42)
	lines := textgen.Lines(data)
	fmt.Printf("\nscanning %d MiB, %d lines (%d suspicious planted)\n",
		len(data)>>20, len(lines), planted)

	names := combined.Names()
	scan := func(rs *sfa.RuleSet) (hits map[string]int, flagged int, elapsed time.Duration) {
		hits = make(map[string]int, len(names))
		start := time.Now()
		for _, line := range lines {
			matched := rs.Scan(line, 0)
			for _, name := range matched {
				hits[name]++
			}
			if len(matched) > 0 {
				flagged++
			}
		}
		return hits, flagged, time.Since(start)
	}

	cHits, cFlagged, cTime := scan(combined)
	iHits, iFlagged, iTime := scan(isolated)

	fmt.Printf("\ncombined: flagged %d lines in %v (%.2f MB/s, %d passes/line)\n",
		cFlagged, cTime.Round(time.Millisecond),
		float64(len(data))/cTime.Seconds()/1e6, combined.NumShards())
	fmt.Printf("isolated: flagged %d lines in %v (%.2f MB/s, %d passes/line)\n",
		iFlagged, iTime.Round(time.Millisecond),
		float64(len(data))/iTime.Seconds()/1e6, isolated.Len())
	if cFlagged != iFlagged {
		log.Fatalf("verdict mismatch: combined flagged %d, isolated %d", cFlagged, iFlagged)
	}

	fmt.Println()
	for _, name := range names {
		if cHits[name] != iHits[name] {
			log.Fatalf("rule %s: combined %d hits, isolated %d", name, cHits[name], iHits[name])
		}
		fmt.Printf("%-14s %6d hits\n", name, cHits[name])
	}
}
