// Monoid lab: the algebraic view of Sect. VII. For a few patterns this
// prints the Table I-style state mappings, the syntactic complexity
// (= size of the minimal D-SFA), idempotent counts, and whether the
// monoid is a group — and rebuilds the Fact 2 worst case |Sd| = |D|^|D|.
//
//	go run ./examples/monoidlab
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/dot"
	"repro/internal/monoid"
)

func main() {
	// Example 1 / Table I: the six mappings of the SFA for (ab)*.
	d := dfa.MustCompilePattern("(ab)*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("state mappings of the SFA for (ab)* (cf. paper Table I):")
	fmt.Print(dot.MappingTable(s))

	patterns := []string{
		"(ab)*",
		"([0-4]{2}[5-9]{2})*",
		"(([02468][13579]){5})*",
		"(a|b)*abb",
		"(?s).*(T.*Y.*P.*E.*S)",
	}
	fmt.Printf("\n%-26s %6s %10s %12s %7s\n",
		"pattern", "|D|", "synt.cplx", "idempotents", "group?")
	for _, pat := range patterns {
		d := dfa.MustCompilePattern(pat)
		m, err := monoid.Transition(d, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %6d %10d %12d %7v\n",
			pat, d.LiveSize(), m.Size(), len(m.Idempotents()), m.IsGroup())
	}

	// Fact 2: the 3-letter DFA whose D-SFA hits the |D|^|D| bound.
	fmt.Println("\nFact 2 worst case (full transformation monoid):")
	for n := 2; n <= 4; n++ {
		d, err := monoid.Fact2DFA(n)
		if err != nil {
			log.Fatal(err)
		}
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%d: |D|=%d, |Sd|=%d = %d^%d\n",
			n, d.NumStates, s.NumStates, d.NumStates, d.NumStates)
	}
}
