// Streaming: validate a byte stream that arrives in chunks — and even
// out of order — without buffering it. The carried state between chunks
// is a single |D|-sized mapping, a direct use of the SFA's associative
// composition (Lemma 1 / Theorem 3).
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/textgen"
	"repro/sfa"
)

func main() {
	const pattern = "([0-4]{5}[5-9]{5})*"
	re, err := sfa.Compile(pattern, sfa.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}

	// 1. Feed a 32 MiB "file" through io.Copy in 64 KiB blocks.
	data := textgen.RnText(5, 32<<20, 3)
	stream, err := re.NewStream()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := io.CopyBuffer(writerOnly{stream}, bytes.NewReader(data), make([]byte, 64<<10)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d MiB in %v → accepted=%v (state carried: one mapping of %d entries)\n",
		stream.Bytes()>>20, time.Since(start), stream.Accepted(), re.Sizes().DFATotal)

	// 2. Out-of-order processing: split the input into four segments,
	//    scan them in scrambled order on separate streams, then compose
	//    the mappings in the *original* order.
	quarter := len(data) / 4
	segments := [][]byte{
		data[:quarter], data[quarter : 2*quarter],
		data[2*quarter : 3*quarter], data[3*quarter:],
	}
	streams := make([]*sfa.Stream, 4)
	for _, i := range []int{2, 0, 3, 1} { // scan order ≠ input order
		s, err := re.NewStream()
		if err != nil {
			log.Fatal(err)
		}
		s.Write(segments[i])
		streams[i] = s
	}
	total := streams[0]
	for _, s := range streams[1:] {
		if err := total.Compose(s); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("out-of-order segments composed → accepted=%v (%d bytes)\n",
		total.Accepted(), total.Bytes())

	// 3. A corrupted chunk flips the verdict, wherever it lands.
	bad, _ := re.NewStream()
	bad.Write(data[:1<<20])
	bad.Write([]byte("not digits"))
	bad.Write(data[1<<20:])
	fmt.Printf("with a corrupted middle chunk → accepted=%v\n", bad.Accepted())
}

// writerOnly hides Stream's non-Writer methods from io.CopyBuffer so it
// cannot shortcut through ReadFrom.
type writerOnly struct{ io.Writer }
