// IDS serving: the idsscan workload put behind the network front end.
// An in-process sfaserve instance hosts two tenants sharing one worker
// pool — "web" (request-line rules) and "payload" (binary signatures).
// Synthetic HTTP traffic is scanned line by line through the streaming
// endpoint while the web tenant hot-reloads mid-run; the demo then proves
// the serving path honest: streamed verdicts must equal one-shot
// RuleSet.MatchMask on the same rules, and the reload must have rebuilt
// only the shards whose rule membership changed.
//
// The observability layer rides along: the handler is armed with a
// 2 ms slow-scan threshold, so the closing 4 MiB single-request scan
// emits a structured trace (read vs match wall time, chunks, compose
// time, prefilter skips) while the per-line scans stay silent; the demo
// ends with a Prometheus /metrics scrape showing the per-tenant series
// a real deployment would alert on. See docs/observability.md.
//
//	go run ./examples/idsserve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/textgen"
	"repro/sfa"
)

var webRules = []sfa.RuleDef{
	{Name: "sql-union", Pattern: `(select|union).{1,64}(select|union)`, Flags: sfa.FoldCase | sfa.DotAll},
	{Name: "dir-traversal", Pattern: `/\.\./\.\./`},
	{Name: "cmd-exe", Pattern: `cmd\.exe`, Flags: sfa.FoldCase},
	{Name: "xp-cmdshell", Pattern: `xp_cmdshell`, Flags: sfa.FoldCase},
	{Name: "script-inject", Pattern: `<script[^>]{0,64}>`, Flags: sfa.FoldCase},
	{Name: "sqli-quote", Pattern: `('|%27) ?or ?('|%27)?1('|%27)?=('|%27)?1`, Flags: sfa.FoldCase},
	{Name: "cgi-shell", Pattern: `/cgi-bin/[a-z]{1,12}\.cgi`},
}

var payloadRules = "nop-sled \\x90{8,}\nelf \\x7fELF[\\x01\\x02]\nshell /bin/sh\\x00\n"

func main() {
	// Lines are tiny, so intra-line parallelism would only pay the fork.
	opts := []sfa.Option{sfa.WithSearch(), sfa.WithThreads(1)}
	hub := serve.NewHub(opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Slow-scan tracing: any scan at or over 2 ms gets one structured
	// JSON record with the per-stage breakdown — the per-line scans
	// finish in microseconds and stay silent, the closing 4 MiB scan
	// trips it on purpose.
	traces := &syncBuffer{}
	slowLog := slog.New(slog.NewJSONHandler(traces, nil))
	go http.Serve(ln, serve.NewHandler(hub, serve.WithSlowScanLog(slowLog, 2*time.Millisecond)))
	base := "http://" + ln.Addr().String()
	fmt.Printf("sfaserve listening on %s\n", base)

	webText, ferr := serve.FormatRules(webRules)
	if ferr != nil {
		log.Fatal(ferr)
	}
	put := func(tenant, rules string) serve.LoadReply {
		req, _ := http.NewRequest(http.MethodPut, base+"/v1/tenants/"+tenant, strings.NewReader(rules))
		var reply serve.LoadReply
		doJSON(req, &reply)
		return reply
	}
	start := time.Now()
	web := put("web", webText)
	payload := put("payload", payloadRules)
	fmt.Printf("tenant web: %d rules → %d shard(s); tenant payload: %d rules → %d shard(s) (%v, one shared pool)\n",
		web.Rules, web.Shards, payload.Rules, payload.Shards, time.Since(start).Round(time.Millisecond))

	// 4 MiB of synthetic traffic, scanned line by line over HTTP.
	data, planted := textgen.Traffic{SuspiciousPerMille: 2}.Generate(4<<20, 42)
	lines := textgen.Lines(data)
	fmt.Printf("\nscanning %d lines (%d suspicious planted) through /v1/tenants/web/scan\n", len(lines), planted)

	hits := map[string]int{}
	flagged := 0
	scan := func(line []byte) []string {
		resp, err := http.Post(base+"/v1/tenants/web/scan", "application/octet-stream", bytes.NewReader(line))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("scan: %d: %s", resp.StatusCode, body)
		}
		var reply serve.ScanReply
		if err := json.Unmarshal(body, &reply); err != nil {
			log.Fatal(err)
		}
		return reply.Matches
	}
	start = time.Now()
	for i, line := range lines {
		if i == len(lines)/2 {
			// Hot-reload mid-scan: one rule added, nothing else touched.
			reload := put("web", webText+"nop-sled \\x90{8,}\n")
			fmt.Printf("hot reload at line %d: gen %d, %d shard(s) reused, %d rebuilt, +%d rule\n",
				i, reload.Generation, reload.ShardsReused, reload.ShardsRebuilt, reload.RulesAdded)
			if reload.ShardsReused == 0 {
				log.Fatal("hot reload rebuilt everything — shard reuse broken")
			}
		}
		for _, name := range scan(line) {
			hits[name]++
		}
	}
	elapsed := time.Since(start)
	for _, n := range hits {
		flagged += n
	}
	fmt.Printf("flagged %d rule hits in %v (%.2f MB/s end-to-end incl. HTTP)\n",
		flagged, elapsed.Round(time.Millisecond), float64(len(data))/elapsed.Seconds()/1e6)

	// Oracle check: the served verdicts must equal one-shot MatchMask on
	// locally compiled copies of the rules each line was scanned under —
	// generation 1 for the first half, generation 2 (with nop-sled) for
	// the rest. The reload returned before the next scan started, so the
	// split is exact.
	final := append(append([]sfa.RuleDef(nil), webRules...), sfa.RuleDef{Name: "nop-sled", Pattern: `\x90{8,}`})
	gen1, err := sfa.NewRuleSetFromDefs(webRules, opts...)
	if err != nil {
		log.Fatal(err)
	}
	gen2, err := sfa.NewRuleSetFromDefs(final, opts...)
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]int{}
	buf := make([]uint64, gen2.MaskWords())
	for i, line := range lines {
		oracle := gen1
		if i >= len(lines)/2 {
			oracle = gen2
		}
		for _, name := range oracle.MaskNames(oracle.MatchMask(line, buf)) {
			want[name]++
		}
	}
	for name, n := range want {
		if hits[name] != n {
			log.Fatalf("rule %s: served %d hits, oracle %d", name, hits[name], n)
		}
	}
	for name := range hits {
		if _, ok := want[name]; !ok {
			log.Fatalf("served rule %s never fires in the oracle", name)
		}
	}
	fmt.Println("\nserved verdicts identical to one-shot MatchMask ✓")
	for name, n := range want {
		fmt.Printf("%-14s %6d hits\n", name, n)
	}

	// One big streamed scan — the whole 4 MiB corpus in a single request
	// — crosses the 2 ms threshold and emits the slow-scan trace.
	fmt.Println("\nscanning the full corpus in one request to trigger the slow-scan trace…")
	scan(data)
	if trace := traces.String(); strings.Contains(trace, "slow scan") {
		fmt.Printf("slow-scan trace (read vs match split, chunk and prefilter account):\n%s", trace)
	} else {
		log.Fatal("the 4 MiB scan did not produce a slow-scan trace")
	}

	// The flight recorder caught every one of those scans in a fixed-size
	// ring — zero allocations on the record path, so it is always on.
	// Show the newest records: the big slow scan leads, with its
	// read/prefilter/compose/match wall-time split.
	var flight serve.FlightReply
	req, _ := http.NewRequest(http.MethodGet, base+"/debug/scans?n=3", nil)
	doJSON(req, &flight)
	fmt.Printf("\nflight recorder (/debug/scans?n=3, ring of %d):\n", flight.Capacity)
	fmt.Printf("%8s  %-8s  %9s  %7s  %10s  %10s  %10s  %8s\n",
		"seq", "tenant", "bytes", "chunks", "read µs", "pref µs", "compose µs", "matches")
	for _, rec := range flight.Records {
		fmt.Printf("%8d  %-8s  %9d  %7d  %10.1f  %10.1f  %10.1f  %8d\n",
			rec.Seq, rec.Tenant, rec.Bytes, rec.Chunks,
			float64(rec.ReadNs)/1e3, float64(rec.PrefilterNs)/1e3, float64(rec.ComposeNs)/1e3, rec.Matches)
	}

	// Attribution: which shards cost what, and which rules actually fire.
	var attr serve.AttributionReply
	req, _ = http.NewRequest(http.MethodGet, base+"/debug/attribution?top=5", nil)
	doJSON(req, &attr)
	webAttr := attr.Tenants["web"]
	fmt.Println("\nper-shard cost (/debug/attribution, tenant web):")
	fmt.Printf("%5s  %5s  %-9s  %10s  %8s  %10s\n", "shard", "rules", "prefilter", "compose µs", "chunks", "MB scanned")
	for _, sh := range webAttr.Shards {
		fmt.Printf("%5d  %5d  %-9s  %10.1f  %8d  %10.2f\n",
			sh.Shard, sh.Rules, sh.Prefilter, float64(sh.ComposeNs)/1e3, sh.ScanChunks, float64(sh.ScanBytes)/1e6)
	}
	fmt.Println("\nrule heat, hottest first (same endpoint):")
	for _, rh := range webAttr.RuleHeat {
		fmt.Printf("%-14s %6d matches\n", rh.Name, rh.Matches)
	}

	// The same observations, scrape-shaped: /metrics negotiates to
	// Prometheus text exposition. Print the web tenant's scan series plus
	// the new attribution rows.
	resp, err := http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		log.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPrometheus scrape excerpt (/metrics?format=prometheus):")
	for _, line := range strings.Split(string(prom), "\n") {
		if strings.HasPrefix(line, "sfa_tenant_scans_total") ||
			strings.HasPrefix(line, "sfa_tenant_scan_bytes_total") ||
			strings.HasPrefix(line, "sfa_scan_chunks_total") ||
			strings.HasPrefix(line, "sfa_tenant_slow_scans_total") ||
			strings.HasPrefix(line, "sfa_tenant_reloads_total") ||
			strings.HasPrefix(line, "sfa_build_info") ||
			strings.HasPrefix(line, `sfa_rule_matches_total{tenant="web"`) ||
			strings.HasPrefix(line, `sfa_shard_boundary_topk_coverage{tenant="web",shard="0"`) {
			fmt.Println(line)
		}
	}
}

// syncBuffer is a mutex-guarded buffer: the slow-scan logger writes from
// handler goroutines while main reads after the scans settle.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func doJSON(req *http.Request, out any) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %d: %s", req.Method, req.URL, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		log.Fatal(err)
	}
}
