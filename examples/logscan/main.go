// Log-format validation: check that a large machine-generated record file
// conforms to its format grammar, comparing every engine of the paper —
// this is the whole-input acceptance use case the paper benchmarks, on a
// realistic task (a malformed byte anywhere must flip the verdict).
//
//	go run ./examples/logscan
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/textgen"
	"repro/sfa"
)

func main() {
	// Records of ten digits alternating even/odd — the paper's Fig. 10
	// pattern, acting as a checksum-like format grammar.
	const pattern = "(([02468][13579]){5})*"
	data := textgen.EvenOddText(64<<20, 7)
	fmt.Printf("validating %d MiB against %s\n\n", len(data)>>20, pattern)

	engines := []struct {
		label string
		opts  []sfa.Option
	}{
		{"nfa-sim (oracle)", []sfa.Option{sfa.WithEngine(sfa.EngineNFA)}},
		{"dfa sequential (Alg.2)", []sfa.Option{sfa.WithEngine(sfa.EngineDFA)}},
		{"dfa speculative p=2 (Alg.3)", []sfa.Option{sfa.WithEngine(sfa.EngineSpecDFA), sfa.WithThreads(2)}},
		{"sfa parallel p=2 (Alg.5)", []sfa.Option{sfa.WithEngine(sfa.EngineSFA), sfa.WithThreads(2)}},
		{"sfa lazy p=2", []sfa.Option{sfa.WithEngine(sfa.EngineLazySFA), sfa.WithThreads(2)}},
	}

	// The O(|N|·n) oracle gets a smaller slice, cut at a record boundary
	// so it stays in the language.
	nfaLen := (4 << 20) - (4<<20)%10
	nfaBytes := data[:nfaLen]
	for _, e := range engines {
		re, err := sfa.Compile(pattern, e.opts...)
		if err != nil {
			log.Fatal(err)
		}
		input := data
		if e.label == "nfa-sim (oracle)" {
			input = nfaBytes
		}
		start := time.Now()
		ok := re.Match(input)
		elapsed := time.Since(start)
		fmt.Printf("%-28s %5v  %10v  %7.3f GB/s (%d MiB)\n",
			e.label, ok, elapsed.Round(time.Microsecond),
			float64(len(input))/elapsed.Seconds()/1e9, len(input)>>20)
	}

	// Corrupt one byte in the middle: every engine must reject.
	data[len(data)/2] = 'x'
	re := sfa.MustCompile(pattern, sfa.WithThreads(2))
	fmt.Printf("\nafter corrupting byte %d: Match = %v (must be false)\n",
		len(data)/2, re.Match(data))
}
