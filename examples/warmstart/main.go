// Command warmstart demonstrates the rule-set persistence subsystem on
// the curated snort sample: cold-build a combined rule set, snapshot it,
// reload it warm, and rebuild it through the content-addressed shard
// cache — timing each path and cross-checking that every variant
// produces byte-identical MatchMask verdicts on synthetic IDS traffic.
//
//	go run ./examples/warmstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"time"

	"repro/internal/snort"
	"repro/internal/syntax"
	"repro/internal/textgen"
	"repro/sfa"
)

func main() {
	rules := snort.ScanSample(12)
	defs := make([]sfa.RuleDef, len(rules))
	for i, r := range rules {
		var fl sfa.Flag
		if r.Flags&syntax.FoldCase != 0 {
			fl |= sfa.FoldCase
		}
		if r.Flags&syntax.DotAll != 0 {
			fl |= sfa.DotAll
		}
		defs[i] = sfa.RuleDef{Name: fmt.Sprintf("r%03d", r.ID), Pattern: r.Pattern, Flags: fl}
	}
	cacheDir := filepath.Join(os.TempDir(), "sfa-warmstart-cache")
	os.RemoveAll(cacheDir)
	base := []sfa.Option{sfa.WithSearch(), sfa.WithThreads(2)}

	// 1. Cold build: the full parse → plan → product → D-SFA pipeline,
	//    filling the shard cache as it goes.
	start := time.Now()
	cold, err := sfa.NewRuleSetFromDefs(defs, append(base, sfa.WithShardCache(cacheDir))...)
	check(err)
	coldDur := time.Since(start)
	fmt.Printf("cold build:       %10v  (%d rules → %d shards)\n", coldDur.Round(time.Millisecond), cold.Len(), cold.NumShards())

	// 2. Snapshot + warm load: construction replaced by decode+validate.
	var snap bytes.Buffer
	check(cold.Save(&snap))
	start = time.Now()
	warm, err := sfa.LoadRuleSet(bytes.NewReader(snap.Bytes()), sfa.WithThreads(2))
	check(err)
	warmDur := time.Since(start)
	fmt.Printf("snapshot load:    %10v  (%.0f× faster, %d KiB file)\n",
		warmDur.Round(time.Millisecond), float64(coldDur)/float64(warmDur), snap.Len()>>10)

	// 3. Cache-warmed rebuild: a fresh process would plan, then fetch
	//    every planned shard from disk instead of constructing it.
	start = time.Now()
	cached, err := sfa.NewRuleSetFromDefs(defs, append(base, sfa.WithShardCache(cacheDir))...)
	check(err)
	cachedDur := time.Since(start)
	fromDisk := 0
	for _, sh := range cached.Shards() {
		if sh.BuildID&(1<<63) != 0 {
			fromDisk++
		}
	}
	fmt.Printf("cache-warmed:     %10v  (%.0f× faster, %d/%d shards from disk)\n",
		cachedDur.Round(time.Millisecond), float64(coldDur)/float64(cachedDur), fromDisk, cached.NumShards())

	// 4. Verdict identity over synthetic traffic with planted attacks.
	data, planted := textgen.Traffic{SuspiciousPerMille: 20}.Generate(1<<20, 7)
	lines := textgen.Lines(data)
	masks := make([][]uint64, 3)
	sets := []*sfa.RuleSet{cold, warm, cached}
	for i, rs := range sets {
		masks[i] = make([]uint64, rs.MaskWords())
	}
	hits := 0
	for _, line := range lines {
		for i, rs := range sets {
			rs.MatchMask(line, masks[i])
		}
		for w := range masks[0] {
			if masks[1][w] != masks[0][w] || masks[2][w] != masks[0][w] {
				log.Fatalf("verdict divergence on %q", line)
			}
		}
		for _, w := range masks[0] {
			if w != 0 {
				hits++
				break
			}
		}
	}
	fmt.Printf("verdicts:         %d/%d lines matched (%d planted); cold == snapshot == cached on every line\n",
		hits, len(lines), planted)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
